#include "baselines/gonzalez.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gclus::baselines {

GonzalezResult gonzalez_kcenter(const Graph& g, NodeId k, NodeId first) {
  const NodeId n = g.num_nodes();
  GCLUS_CHECK(k >= 1 && k <= n);
  GonzalezResult out;
  out.centers.reserve(k);

  // `dist` is the running distance to the nearest chosen center; each new
  // center relaxes it with one (pruned) BFS.
  std::vector<Dist> dist(n, kInfDist);
  std::vector<NodeId> frontier, next;

  NodeId next_center = first == kInvalidNode ? 0 : first;
  GCLUS_CHECK(next_center < n);
  for (NodeId i = 0; i < k; ++i) {
    out.centers.push_back(next_center);
    // Incremental BFS from the new center; stop exploring where the
    // existing distance is already no worse.
    frontier.clear();
    frontier.push_back(next_center);
    dist[next_center] = 0;
    Dist level = 0;
    while (!frontier.empty()) {
      ++level;
      next.clear();
      for (const NodeId u : frontier) {
        for (const NodeId v : g.neighbors(u)) {
          if (level < dist[v]) {
            dist[v] = level;
            next.push_back(v);
          }
        }
      }
      frontier.swap(next);
    }
    // Farthest node (within reachable territory) becomes the next center.
    Dist far = 0;
    NodeId far_node = kInvalidNode;
    for (NodeId v = 0; v < n; ++v) {
      // Unreached components take absolute priority: they have infinite
      // distance, so pick from them first.
      if (dist[v] == kInfDist) {
        far_node = v;
        far = kInfDist;
        break;
      }
      if (dist[v] > far) {
        far = dist[v];
        far_node = v;
      }
    }
    if (i + 1 < k) {
      GCLUS_CHECK(far_node != kInvalidNode);
      next_center = far_node;
    }
  }

  Dist radius = 0;
  for (NodeId v = 0; v < n; ++v) {
    GCLUS_CHECK(dist[v] != kInfDist,
                "k smaller than the number of connected components");
    radius = std::max(radius, dist[v]);
  }
  out.radius = radius;
  return out;
}

}  // namespace gclus::baselines
