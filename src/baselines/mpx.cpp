#include "baselines/mpx.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/growth.hpp"
#include "graph/compressed.hpp"

namespace gclus::baselines {

namespace {

template <class G>
Clustering mpx_impl(const G& g, double beta, const MpxOptions& options) {
  GCLUS_CHECK(beta > 0.0, "MPX needs beta > 0");
  const NodeId n = g.num_nodes();
  GCLUS_CHECK(n >= 1);
  ThreadPool& pool = options.pool_or_global();

  // Draw shifts; start time of u is delta_max - delta_u.
  std::vector<double> delta(n);
  double delta_max = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    delta[v] = keyed_exponential(options.seed, v, beta);
    delta_max = std::max(delta_max, delta[v]);
  }

  // Bucket nodes by integer start step; remember fractional priority.
  const auto max_step = static_cast<std::size_t>(delta_max) + 1;
  std::vector<std::vector<NodeId>> starts(max_step + 1);
  std::vector<std::uint32_t> frac_priority(n);
  for (NodeId v = 0; v < n; ++v) {
    const double start = delta_max - delta[v];
    const auto step = static_cast<std::size_t>(start);
    starts[step].push_back(v);
    // Smaller fractional part of the start time wins same-step ties.
    const double frac = start - std::floor(start);
    frac_priority[v] =
        static_cast<std::uint32_t>(frac * 4294967295.0);
  }
  // Activation order within a step must be deterministic for reproducible
  // cluster ids (node order, like CLUSTER's batches).
  for (auto& bucket : starts) std::sort(bucket.begin(), bucket.end());

  GrowthStateT<G> state(g, pool, options.growth, options.workspace);
  std::size_t t = 0;
  while (state.covered_count() < n) {
    if (t < starts.size()) {
      for (const NodeId v : starts[t]) {
        if (!state.is_covered(v)) state.add_center(v, frac_priority[v]);
      }
    } else if (state.frontier_empty()) {
      // All scheduled starts exhausted and growth stalled: only possible
      // on disconnected graphs (every component eventually schedules its
      // own starts; this is a safety valve).
      state.add_singletons_for_uncovered();
      break;
    }
    state.step();
    ++t;
  }
  Clustering out = std::move(state).finish();
  out.iterations = t;
  return out;
}

}  // namespace

Clustering mpx(const Graph& g, double beta, const MpxOptions& options) {
  return mpx_impl(g, beta, options);
}

Clustering mpx(const CompressedGraph& g, double beta,
               const MpxOptions& options) {
  return mpx_impl(g, beta, options);
}

double mpx_tune_beta(const Graph& g, ClusterId min_clusters,
                     const MpxOptions& options, int runs) {
  GCLUS_CHECK(min_clusters >= 1);
  // #clusters grows monotonically with beta (in expectation): bracket then
  // bisect.  beta is a rate, so search in log space.
  double lo = 1e-4, hi = 64.0;
  double best = hi;
  for (int i = 0; i < runs; ++i) {
    const double mid = std::sqrt(lo * hi);
    const Clustering c = mpx(g, mid, options);
    if (c.num_clusters() >= min_clusters) {
      best = mid;
      hi = mid;  // enough clusters: try smaller beta
    } else {
      lo = mid;
    }
  }
  return best;
}

}  // namespace gclus::baselines
