#include "baselines/random_centers.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/growth.hpp"
#include "graph/compressed.hpp"

namespace gclus::baselines {

namespace {

template <class G>
Clustering random_centers_impl(const G& g, NodeId k,
                               const RandomCentersOptions& options) {
  const NodeId n = g.num_nodes();
  GCLUS_CHECK(k >= 1 && k <= n);
  ThreadPool& pool = options.pool_or_global();

  // Sample k distinct nodes (Floyd's algorithm would also do; with k << n
  // rejection is cheap and deterministic given the seed).
  Rng rng(options.seed);
  std::vector<NodeId> centers;
  {
    std::vector<char> used(n, 0);
    while (centers.size() < k) {
      const auto v = static_cast<NodeId>(rng.next_below(n));
      if (!used[v]) {
        used[v] = 1;
        centers.push_back(v);
      }
    }
  }
  std::sort(centers.begin(), centers.end());

  GrowthStateT<G> state(g, pool, options.growth, options.workspace);
  for (const NodeId c : centers) state.add_center(c);
  while (state.covered_count() < n) {
    if (state.frontier_empty()) {
      // A component with no sampled center: cover it with a fallback.
      state.add_center(state.first_uncovered());
    }
    state.step();
  }
  return std::move(state).finish();
}

}  // namespace

Clustering random_centers_clustering(const Graph& g, NodeId k,
                                     const RandomCentersOptions& options) {
  return random_centers_impl(g, k, options);
}

Clustering random_centers_clustering(const CompressedGraph& g, NodeId k,
                                     const RandomCentersOptions& options) {
  return random_centers_impl(g, k, options);
}

}  // namespace gclus::baselines
