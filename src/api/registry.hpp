// The algorithm registry — one string-keyed front door for every
// decomposition algorithm in the library.
//
// Each algorithm registers a uniform adapter
//     Clustering run(const Graph&, const AlgoParams&, RunContext&)
// plus a declared parameter schema, so benches, examples, tests, and any
// future serving endpoint select algorithms and set parameters by name
// (`--algo=cluster2 --tau=64`) instead of linking against a per-algorithm
// options struct and switch statement.  Adapters are thin: they translate
// the string-keyed parameters into the algorithm's native options struct
// (whose RunContext slice is the caller's context, verbatim), so a
// registry run is byte-identical to the corresponding direct call with the
// same seed.
//
// Parameter handling is strict: Registry::run validates every supplied key
// against the algorithm's schema and aborts on unknown keys or malformed
// values — a typo'd "--tua=64" must not silently run with the default.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "api/run_context.hpp"
#include "common/status.hpp"
#include "core/clustering.hpp"
#include "graph/compressed.hpp"
#include "graph/graph.hpp"

namespace gclus {

/// Typed declaration of one algorithm parameter.
struct ParamSpec {
  enum class Type { kU32, kU64, kDouble, kBool };

  std::string key;
  Type type = Type::kU32;
  std::string default_value;  // rendered for --list / docs
  std::string help;
};

const char* param_type_name(ParamSpec::Type type);

/// String-keyed parameter bag.  Values are stored as strings (the CLI and
/// config formats they come from) and parsed on access; parse failures
/// abort with the offending key and value.
class AlgoParams {
 public:
  AlgoParams() = default;
  AlgoParams(
      std::initializer_list<std::pair<std::string, std::string>> entries);

  AlgoParams& set(const std::string& key, const std::string& value);
  AlgoParams& set(const std::string& key, std::uint64_t value);
  /// Doubles are rendered with round-trip precision (%.17g), so a value
  /// threaded through the registry equals the one a direct call would see.
  AlgoParams& set(const std::string& key, double value);

  [[nodiscard]] bool contains(const std::string& key) const;

  [[nodiscard]] std::uint32_t get_u32(const std::string& key,
                                      std::uint32_t fallback) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

struct AlgoInfo {
  std::string name;
  std::string summary;
  std::vector<ParamSpec> params;
  std::function<Clustering(const Graph&, const AlgoParams&, RunContext&)> run;
  /// Native compressed-mode adapter, or null when the algorithm's
  /// traversal is neighbor-order dependent (center-set Voronoi
  /// propagation) — Registry::run on a CompressedGraph then decompresses
  /// and runs the plain adapter, so every algorithm accepts either
  /// representation with identical output.
  std::function<Clustering(const CompressedGraph&, const AlgoParams&,
                           RunContext&)>
      run_compressed;
};

class Registry {
 public:
  /// Registers an algorithm; duplicate names abort.
  void add(AlgoInfo info);

  /// nullptr when `name` is not registered.
  [[nodiscard]] const AlgoInfo* find(const std::string& name) const;

  /// Registered names, ascending.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Validates `params` against the schema of `name` and invokes its
  /// adapter.  Aborts on unknown algorithm or unknown parameter keys.
  Clustering run(const std::string& name, const Graph& g,
                 const AlgoParams& params, RunContext& ctx) const;

  /// Runs `name` on a compressed graph: natively when the algorithm
  /// registered a compressed adapter, else by decompressing first.  The
  /// result is identical to running on the equivalent plain Graph.
  Clustering run(const std::string& name, const CompressedGraph& g,
                 const AlgoParams& params, RunContext& ctx) const;

  /// Like run(), but selection errors — unknown algorithm, undeclared
  /// parameter key — come back as kInvalidArgument instead of aborting,
  /// so a serving caller can reject one bad request and keep going.
  /// (Malformed parameter *values* still abort inside the adapter; the
  /// schema declares keys, not value grammars.)
  [[nodiscard]] StatusOr<Clustering> try_run(const std::string& name,
                                             const Graph& g,
                                             const AlgoParams& params,
                                             RunContext& ctx) const;

  /// Compressed-graph counterpart of try_run; same fallback rule as the
  /// compressed run().
  [[nodiscard]] StatusOr<Clustering> try_run(const std::string& name,
                                             const CompressedGraph& g,
                                             const AlgoParams& params,
                                             RunContext& ctx) const;

 private:
  [[nodiscard]] StatusOr<const AlgoInfo*> select(
      const std::string& name, const AlgoParams& params) const;

  std::map<std::string, AlgoInfo> algos_;
};

/// The process-wide registry, with every built-in decomposition algorithm
/// registered on first use.
Registry& registry();

namespace detail {
/// Defined in algorithms.cpp; referenced from registry() so the
/// registration translation unit can never be dropped by the linker.
void register_builtin_algorithms(Registry& r);
}  // namespace detail

}  // namespace gclus
