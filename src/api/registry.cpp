#include "api/registry.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"
#include "common/parse.hpp"

namespace gclus {

const char* param_type_name(ParamSpec::Type type) {
  switch (type) {
    case ParamSpec::Type::kU32:
      return "u32";
    case ParamSpec::Type::kU64:
      return "u64";
    case ParamSpec::Type::kDouble:
      return "double";
    case ParamSpec::Type::kBool:
      break;
  }
  return "bool";
}

AlgoParams::AlgoParams(
    std::initializer_list<std::pair<std::string, std::string>> entries) {
  for (const auto& [key, value] : entries) set(key, value);
}

AlgoParams& AlgoParams::set(const std::string& key, const std::string& value) {
  entries_[key] = value;
  return *this;
}

AlgoParams& AlgoParams::set(const std::string& key, std::uint64_t value) {
  return set(key, std::to_string(value));
}

AlgoParams& AlgoParams::set(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return set(key, std::string(buf));
}

bool AlgoParams::contains(const std::string& key) const {
  return entries_.count(key) != 0;
}

namespace {

std::uint64_t parse_u64_param(const std::string& key,
                              const std::string& value) {
  const StatusOr<std::uint64_t> v = parse_u64(value);
  GCLUS_CHECK(v.ok(), "parameter ", key, ": '", value,
              "' is not an unsigned integer");
  return *v;
}

}  // namespace

std::uint32_t AlgoParams::get_u32(const std::string& key,
                                  std::uint32_t fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  const std::uint64_t v = parse_u64_param(key, it->second);
  GCLUS_CHECK(v <= 0xffffffffULL, "parameter ", key, ": ", it->second,
              " does not fit in 32 bits");
  return static_cast<std::uint32_t>(v);
}

std::uint64_t AlgoParams::get_u64(const std::string& key,
                                  std::uint64_t fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  return parse_u64_param(key, it->second);
}

double AlgoParams::get_double(const std::string& key, double fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  GCLUS_CHECK(end != it->second.c_str() && *end == '\0', "parameter ", key,
              ": '", it->second, "' is not a number");
  return v;
}

bool AlgoParams::get_bool(const std::string& key, bool fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  GCLUS_CHECK(false, "parameter ", key, ": '", v, "' is not a boolean");
  return fallback;
}

void Registry::add(AlgoInfo info) {
  GCLUS_CHECK(!info.name.empty() && info.run != nullptr);
  const auto [it, inserted] = algos_.emplace(info.name, std::move(info));
  GCLUS_CHECK(inserted, "algorithm registered twice: ", it->first);
}

const AlgoInfo* Registry::find(const std::string& name) const {
  const auto it = algos_.find(name);
  return it == algos_.end() ? nullptr : &it->second;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(algos_.size());
  for (const auto& [name, info] : algos_) out.push_back(name);
  return out;
}

Clustering Registry::run(const std::string& name, const Graph& g,
                         const AlgoParams& params, RunContext& ctx) const {
  auto result = try_run(name, g, params, ctx);
  GCLUS_CHECK(result.ok(), result.status().message());
  return std::move(result).value();
}

Clustering Registry::run(const std::string& name, const CompressedGraph& g,
                         const AlgoParams& params, RunContext& ctx) const {
  auto result = try_run(name, g, params, ctx);
  GCLUS_CHECK(result.ok(), result.status().message());
  return std::move(result).value();
}

/// Selection checks shared by both try_run overloads: resolves the
/// algorithm and rejects undeclared parameter keys.
StatusOr<const AlgoInfo*> Registry::select(const std::string& name,
                                           const AlgoParams& params) const {
  const AlgoInfo* info = find(name);
  if (info == nullptr) {
    std::string known;
    for (const auto& n : names()) known += " " + n;
    return InvalidArgumentError("unknown algorithm '" + name +
                                "'; registered:" + known);
  }
  for (const auto& [key, value] : params.entries()) {
    bool declared = false;
    for (const ParamSpec& spec : info->params) {
      if (spec.key == key) {
        declared = true;
        break;
      }
    }
    if (!declared) {
      std::string known;
      for (const ParamSpec& spec : info->params) known += " " + spec.key;
      return InvalidArgumentError("algorithm '" + name +
                                  "' has no parameter '" + key +
                                  "'; declared:" + known);
    }
  }
  return info;
}

StatusOr<Clustering> Registry::try_run(const std::string& name, const Graph& g,
                                       const AlgoParams& params,
                                       RunContext& ctx) const {
  GCLUS_ASSIGN_OR_RETURN(const AlgoInfo* info, select(name, params));
  return info->run(g, params, ctx);
}

StatusOr<Clustering> Registry::try_run(const std::string& name,
                                       const CompressedGraph& g,
                                       const AlgoParams& params,
                                       RunContext& ctx) const {
  GCLUS_ASSIGN_OR_RETURN(const AlgoInfo* info, select(name, params));
  if (info->run_compressed) return info->run_compressed(g, params, ctx);
  // Neighbor-order-dependent algorithm: materialize the plain CSR and run
  // the ordinary adapter, which is definitionally output-identical.
  const Graph plain = g.decompress(ctx.pool_or_global());
  return info->run(plain, params, ctx);
}

Registry& registry() {
  static Registry* instance = [] {
    auto* r = new Registry();
    detail::register_builtin_algorithms(*r);
    return r;
  }();
  return *instance;
}

}  // namespace gclus
