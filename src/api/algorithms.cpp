// Built-in registrations for the algorithm registry.
//
// Every adapter follows the same recipe: copy the caller's RunContext into
// the algorithm's native options struct (options *are* RunContexts, so
// this is one slice assignment — same seed, pool, growth knobs, telemetry,
// workspace), read declared parameters out of the AlgoParams bag, and call
// the existing entry point.  No randomness is re-derived here: a registry
// run is byte-identical to the corresponding direct call with the same
// context.
//
// Center-set algorithms (gonzalez, kcenter) are registered through a
// shared owner-propagating multi-source BFS that turns their center sets
// into full Clusterings (the nearest-center Voronoi partition), so the
// registry's uniform return type covers them too.
#include <algorithm>
#include <limits>
#include <utility>

#include "api/registry.hpp"
#include "baselines/gonzalez.hpp"
#include "baselines/mpx.hpp"
#include "baselines/random_centers.hpp"
#include "common/check.hpp"
#include "core/cluster.hpp"
#include "core/cluster2.hpp"
#include "core/distance_oracle.hpp"
#include "core/kcenter.hpp"
#include "core/weighted_cluster.hpp"
#include "graph/bfs.hpp"
#include "graph/weighted.hpp"
#include "mapreduce/engine.hpp"
#include "mr_algos/mr_bfs.hpp"
#include "mr_algos/mr_cluster.hpp"
#include "mr_algos/mr_mpx.hpp"

namespace gclus {
namespace {

using Type = ParamSpec::Type;

const ParamSpec kTauSpec{"tau", Type::kU32, "8",
                         "decomposition granularity (Theorem 1's τ)"};
const ParamSpec kSelectionSpec{
    "selection_constant", Type::kDouble, "4",
    "constant of the selection probability 4·τ·log n / |uncovered|"};
const ParamSpec kThresholdSpec{"threshold_constant", Type::kDouble, "8",
                               "constant of the loop threshold 8·τ·log n"};

/// Reads k with a guard: a center-count parameter is meaningless above n,
/// so it is clamped (small test corpus graphs run fine with the default).
NodeId read_k(NodeId num_nodes, const AlgoParams& params, NodeId fallback) {
  const NodeId k = params.get_u32("k", fallback);
  return std::max<NodeId>(1, std::min<NodeId>(k, num_nodes));
}

/// Nearest-center Voronoi partition of `centers`, via the owner-tracking
/// multi-source BFS (graph/bfs).  Claims propagate along BFS tree edges,
/// so every member has a same-cluster neighbor one hop closer and
/// Clustering::validate holds.
Clustering clustering_from_centers(const Graph& g,
                                   const std::vector<NodeId>& centers) {
  GCLUS_CHECK(!centers.empty());
  const NodeId n = g.num_nodes();
  std::vector<std::uint32_t> owner;
  std::vector<Dist> dist = multi_source_bfs(g, centers, &owner);

  Clustering out;
  out.centers = centers;
  out.assignment.assign(owner.begin(), owner.end());
  out.dist_to_center = std::move(dist);
  Dist radius = 0;
  for (NodeId v = 0; v < n; ++v) {
    GCLUS_CHECK(out.assignment[v] != kNoCluster,
                "center set does not reach every component");
    radius = std::max(radius, out.dist_to_center[v]);
  }
  for (ClusterId c = 0; c < centers.size(); ++c) {
    GCLUS_CHECK(out.assignment[centers[c]] == c, "duplicate center node ",
                centers[c]);
  }
  out.growth_steps = radius;
  finalize_cluster_stats(out);
  return out;
}

// --- Growth-engine algorithms run natively on either representation: the
// same templated adapter body serves as `run` (Graph) and `run_compressed`
// (CompressedGraph), so a compressed registry run shares every line of
// parameter translation with the plain one. ---

template <class G>
Clustering run_cluster(const G& g, const AlgoParams& p, RunContext& ctx) {
  ClusterOptions o;
  o.context() = ctx;
  o.selection_constant = p.get_double("selection_constant", 4.0);
  o.threshold_constant = p.get_double("threshold_constant", 8.0);
  return cluster(g, p.get_u32("tau", 8), o);
}

void register_cluster(Registry& r) {
  r.add({"cluster",
         "CLUSTER(τ) — Algorithm 1: batched random centers, grow until half "
         "the uncovered nodes are covered",
         {kTauSpec, kSelectionSpec, kThresholdSpec},
         run_cluster<Graph>,
         run_cluster<CompressedGraph>});
}

template <class G>
Clustering run_cluster2(const G& g, const AlgoParams& p, RunContext& ctx) {
  ClusterOptions o;
  o.context() = ctx;
  o.selection_constant = p.get_double("selection_constant", 4.0);
  o.threshold_constant = p.get_double("threshold_constant", 8.0);
  return cluster2(g, p.get_u32("tau", 8), o).clustering;
}

void register_cluster2(Registry& r) {
  r.add({"cluster2",
         "CLUSTER2(τ) — Algorithm 2: preliminary CLUSTER run learns R_ALG, "
         "then fixed 2·R_ALG growth quotas per iteration",
         {kTauSpec, kSelectionSpec, kThresholdSpec},
         run_cluster2<Graph>,
         run_cluster2<CompressedGraph>});
}

void register_weighted_cluster(Registry& r) {
  r.add({"weighted_cluster",
         "weighted decomposition (§7 extension) on the unit-weight lift of "
         "the graph; degenerates to CLUSTER step for step",
         {kTauSpec, kSelectionSpec, kThresholdSpec},
         [](const Graph& g, const AlgoParams& p, RunContext& ctx) {
           WeightedClusterOptions o;
           o.context() = ctx;
           o.selection_constant = p.get_double("selection_constant", 4.0);
           o.threshold_constant = p.get_double("threshold_constant", 8.0);
           const WeightedClustering wc = weighted_cluster(
               WeightedGraph::from_unit_weights(g), p.get_u32("tau", 8), o);
           Clustering out;
           out.assignment = wc.assignment;
           out.centers = wc.centers;
           // Unit weights make hop and weighted distances coincide.
           out.dist_to_center = wc.hops_to_center;
           out.growth_steps = static_cast<std::size_t>(wc.final_clock);
           out.iterations = wc.iterations;
           finalize_cluster_stats(out);
           return out;
         },
         /*run_compressed=*/nullptr});
}

template <class G>
Clustering run_mpx(const G& g, const AlgoParams& p, RunContext& ctx) {
  baselines::MpxOptions o;
  o.context() = ctx;
  return baselines::mpx(g, p.get_double("beta", 0.5), o);
}

void register_mpx(Registry& r) {
  r.add({"mpx",
         "Miller–Peng–Xu random-shift decomposition [SPAA'13] — the paper's "
         "clustering baseline",
         {{"beta", Type::kDouble, "0.5",
           "exponential-shift rate; larger β → more, smaller clusters"}},
         run_mpx<Graph>,
         run_mpx<CompressedGraph>});
}

template <class G>
Clustering run_random_centers(const G& g, const AlgoParams& p,
                              RunContext& ctx) {
  baselines::RandomCentersOptions o;
  o.context() = ctx;
  return baselines::random_centers_clustering(
      g, read_k(g.num_nodes(), p, 16), o);
}

void register_random_centers(Registry& r) {
  r.add({"random_centers",
         "one-shot uniform random centers grown to coverage (Meyer-style "
         "baseline)",
         {{"k", Type::kU32, "16", "number of centers (clamped to n)"}},
         run_random_centers<Graph>,
         run_random_centers<CompressedGraph>});
}

void register_gonzalez(Registry& r) {
  r.add({"gonzalez",
         "Gonzalez farthest-first k-center (sequential 2-approximation), "
         "returned as the nearest-center partition",
         {{"k", Type::kU32, "8", "number of centers (clamped to n)"},
          {"first", Type::kU32, "0", "seed node of the sweep"}},
         [](const Graph& g, const AlgoParams& p, RunContext& ctx) {
           const auto res = baselines::gonzalez_kcenter(
               g, read_k(g.num_nodes(), p, 8), p.get_u32("first", 0));
           ctx.emit("gonzalez.radius", static_cast<double>(res.radius));
           return clustering_from_centers(g, res.centers);
         },
         /*run_compressed=*/nullptr});
}

void register_kcenter(Registry& r) {
  r.add({"kcenter",
         "CLUSTER-based k-center approximation (Theorem 2), returned as the "
         "nearest-center partition",
         {{"k", Type::kU32, "8", "number of centers (clamped to n)"},
          {"tau_scale", Type::kDouble, "1",
           "scale of the τ = scale·k/log²n choice"}},
         [](const Graph& g, const AlgoParams& p, RunContext& ctx) {
           KCenterOptions o;
           o.context() = ctx;
           o.tau_scale = p.get_double("tau_scale", 1.0);
           const KCenterResult res =
               kcenter_approx(g, read_k(g.num_nodes(), p, 8), o);
           ctx.emit("kcenter.radius", static_cast<double>(res.radius));
           ctx.emit("kcenter.raw_clusters",
                    static_cast<double>(res.raw_clusters));
           ctx.emit("kcenter.tau", static_cast<double>(res.tau));
           return clustering_from_centers(g, res.centers);
         },
         /*run_compressed=*/nullptr});
}

// --- MR-emulated algorithms (mr.*): the same decompositions executed in
// MR(M_G, M_L) rounds on the out-of-core engine.  Shared engine knobs are
// declared once; every adapter emits the engine's round/volume/spill
// metrics through the context's telemetry sink. ---

const ParamSpec kMrParams[] = {
    {"partitions", Type::kU32, "64",
     "shuffle partition count (pinned; never derived from threads)"},
    {"spill_bytes", Type::kU64, "0",
     "map-phase shuffle buffer budget in bytes; 0 = in-memory"},
    {"ml_pairs", Type::kU64, "0",
     "M_L local memory in pairs for round accounting; 0 = unbounded"},
    {"combiners", Type::kBool, "true", "run mapper-side combiners"},
};

mr::Config mr_config(const AlgoParams& p, RunContext& ctx) {
  mr::Config cfg;
  cfg.pool = ctx.pool;
  cfg.num_partitions = p.get_u32("partitions", 64);
  cfg.spill_memory_bytes = p.get_u64("spill_bytes", 0);
  const std::uint64_t ml = p.get_u64("ml_pairs", 0);
  if (ml > 0) cfg.local_memory_pairs = static_cast<std::size_t>(ml);
  cfg.enable_combiners = p.get_bool("combiners", true);
  return cfg;
}

void emit_mr_metrics(RunContext& ctx, const mr::Engine& engine) {
  const mr::Metrics& m = engine.metrics();
  ctx.emit("mr.rounds", static_cast<double>(m.rounds));
  ctx.emit("mr.pairs_shuffled", static_cast<double>(m.pairs_shuffled));
  ctx.emit("mr.bytes_spilled", static_cast<double>(m.bytes_spilled));
  ctx.emit("mr.spill_runs", static_cast<double>(m.spill_runs));
  ctx.emit("mr.runs_merged", static_cast<double>(m.runs_merged));
  ctx.emit("mr.combiner_reduction", m.combiner_reduction());
  // Degradation counters are emitted only when something actually went
  // wrong, so healthy telemetry streams stay unchanged.
  if (m.spill_fallback_runs > 0) {
    ctx.emit("mr.spill_fallback_runs",
             static_cast<double>(m.spill_fallback_runs));
  }
  if (m.spill_degraded_rounds > 0) {
    ctx.emit("mr.spill_degraded_rounds",
             static_cast<double>(m.spill_degraded_rounds));
  }
  if (m.spill_write_retries > 0) {
    ctx.emit("mr.spill_write_retries",
             static_cast<double>(m.spill_write_retries));
  }
}

void add_mr(Registry& r, std::string name, std::string summary,
            std::vector<ParamSpec> own_params,
            Clustering (*body)(mr::Engine&, const Graph&, const AlgoParams&,
                               RunContext&)) {
  for (const ParamSpec& spec : kMrParams) own_params.push_back(spec);
  r.add({std::move(name), std::move(summary), std::move(own_params),
         [body](const Graph& g, const AlgoParams& p, RunContext& ctx) {
           mr::Engine engine(mr_config(p, ctx));
           Clustering c = body(engine, g, p, ctx);
           emit_mr_metrics(ctx, engine);
           return c;
         },
         /*run_compressed=*/nullptr});
}

void register_mr_algorithms(Registry& r) {
  add_mr(r, "mr.cluster",
         "CLUSTER(τ) executed in MR rounds on the out-of-core engine; "
         "identical partition to 'cluster' for the same seed",
         {kTauSpec, kSelectionSpec, kThresholdSpec},
         [](mr::Engine& engine, const Graph& g, const AlgoParams& p,
            RunContext& ctx) {
           mr_algos::MrClusterOptions o;
           o.seed = ctx.seed;
           o.selection_constant = p.get_double("selection_constant", 4.0);
           o.threshold_constant = p.get_double("threshold_constant", 8.0);
           return mr_algos::mr_cluster(engine, g, p.get_u32("tau", 8), o)
               .clustering;
         });

  add_mr(r, "mr.mpx",
         "MPX executed in MR rounds on the out-of-core engine; identical "
         "partition to 'mpx' for the same seed",
         {{"beta", Type::kDouble, "0.5",
           "exponential-shift rate; larger β → more, smaller clusters"}},
         [](mr::Engine& engine, const Graph& g, const AlgoParams& p,
            RunContext& ctx) {
           return mr_algos::mr_mpx(engine, g, p.get_double("beta", 0.5),
                                   ctx.seed)
               .clustering;
         });

  add_mr(r, "mr.bfs",
         "level-synchronous MR BFS from one source, returned as the "
         "single-cluster decomposition (dist_to_center = BFS distance)",
         {{"source", Type::kU32, "0", "BFS source node (clamped to n-1)"}},
         [](mr::Engine& engine, const Graph& g, const AlgoParams& p,
            RunContext& ctx) {
           const NodeId source = std::min<NodeId>(
               p.get_u32("source", 0), g.num_nodes() - 1);
           const mr_algos::MrBfsResult res =
               mr_algos::mr_bfs(engine, g, source);
           ctx.emit("mr.bfs.eccentricity",
                    static_cast<double>(res.eccentricity));
           Clustering out;
           out.centers = {source};
           out.assignment.assign(g.num_nodes(), 0);
           for (NodeId v = 0; v < g.num_nodes(); ++v) {
             GCLUS_CHECK(res.dist[v] != kInfDist, "mr.bfs: source ", source,
                         " does not reach node ", v,
                         " — run on one connected component");
           }
           out.dist_to_center = res.dist;
           out.growth_steps = res.supersteps;
           finalize_cluster_stats(out);
           return out;
         });
}

void register_oracle(Registry& r) {
  r.add({"oracle",
         "distance-oracle decomposition (§4): CLUSTER2 at τ = √n/log²n on "
         "the oracle's derived seed stream; emits quotient size and APSP "
         "path telemetry",
         {{"tau", Type::kU32, "0",
           "granularity; 0 picks √n/log²n automatically"},
          {"use_cluster2", Type::kBool, "true",
           "CLUSTER2 (analyzed variant) instead of plain CLUSTER"}},
         [](const Graph& g, const AlgoParams& p, RunContext& ctx) {
           DistanceOracleOptions o;
           o.context() = ctx;
           o.tau = p.get_u32("tau", 0);
           o.use_cluster2 = p.get_bool("use_cluster2", true);
           OracleBuild build = DistanceOracle::build_full(g, o);
           return std::move(build.clustering);
         },
         /*run_compressed=*/nullptr});
}

}  // namespace

namespace detail {

void register_builtin_algorithms(Registry& r) {
  register_cluster(r);
  register_cluster2(r);
  register_weighted_cluster(r);
  register_oracle(r);
  register_mpx(r);
  register_random_centers(r);
  register_gonzalez(r);
  register_kcenter(r);
  register_mr_algorithms(r);
}

}  // namespace detail
}  // namespace gclus
