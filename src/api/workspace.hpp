// Reusable per-run scratch memory — the serving-scenario allocator fix.
//
// Every decomposition request used to pay O(n + m) allocation and first-
// touch page faulting: GrowthState owned eight node-sized arrays and a set
// of per-worker frontier buffers, all constructed per call, and
// parallel_bfs did the same for its atomic distance array and worklists.
// For one-shot batch runs that cost disappears into the noise; for the
// ROADMAP's serving scenario — many decompositions of the *same* graph per
// second — and for every multi-trial bench loop it is pure overhead.
//
// A Workspace owns those buffers and lends them out run by run.  Buffers
// only ever grow, so a workspace warmed on a graph serves any same-or-
// smaller graph without touching the allocator; the borrowing kernel still
// resets the per-node state it needs (that reset is O(n) streaming writes
// into warm pages, which is the cheap part — the malloc + page-fault +
// capacity-regrowth traffic is what reuse eliminates).  bench_api measures
// the effect as cold-vs-warm timings per algorithm.
//
// Concurrency contract: a Workspace serves ONE run at a time per buffer
// family (one growth engine and one BFS may borrow simultaneously —
// their buffers are disjoint).  Overlapping acquires of the same family
// are an API-contract violation and abort via GCLUS_CHECK: recycled
// buffers handed to two live runs is the classic use-after-reset hazard,
// so it fails loudly rather than corrupting results.  Concurrent requests
// should use one Workspace per worker.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace gclus {

/// Scratch set of the cluster-growth engine (GrowthState).  Field-by-field
/// documentation lives with GrowthState, which is the only writer.
struct GrowthScratch {
  std::vector<std::atomic<std::uint64_t>> claim;
  std::vector<std::uint8_t> covered;
  std::vector<std::atomic_flag> committing;
  std::vector<Dist> dist;
  std::vector<std::atomic<std::uint64_t>> frontier_bits;
  std::vector<NodeId> frontier;
  std::vector<NodeId> uncovered_candidates;
  std::vector<std::vector<NodeId>> proposals;      // per worker
  std::vector<std::vector<NodeId>> next_frontier;  // per worker
  std::vector<std::vector<NodeId>> sample;         // per worker (center draws)

  /// Grows every buffer to serve a graph of `n` nodes under `workers`
  /// threads.  Capacity only — values are stale until the borrowing engine
  /// resets them.  Atomic vectors are replaced outright when too small
  /// (std::atomic is not movable, so they cannot resize in place).
  void ensure(NodeId n, std::size_t workers);

  [[nodiscard]] std::size_t bytes() const;
};

/// Scratch set of the level-synchronous parallel BFS.
struct BfsScratch {
  std::vector<std::atomic<Dist>> dist;
  std::vector<NodeId> frontier;
  std::vector<NodeId> candidates;
  std::vector<std::vector<NodeId>> local_next;  // per worker

  void ensure(NodeId n, std::size_t workers);

  [[nodiscard]] std::size_t bytes() const;
};

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Borrows the growth scratch, sized for (`n`, `workers`).  Aborts if a
  /// previous borrower has not released it (two live GrowthStates on one
  /// Workspace would silently share claim arrays).
  GrowthScratch* acquire_growth(NodeId n, std::size_t workers);
  void release_growth(const GrowthScratch* s);

  BfsScratch* acquire_bfs(NodeId n, std::size_t workers);
  void release_bfs(const BfsScratch* s);

  /// Total bytes currently retained across both scratch families.
  [[nodiscard]] std::size_t bytes() const;

  /// Lifetime acquire counters (a warm workspace shows reuses > 1).
  [[nodiscard]] std::size_t growth_acquires() const {
    return growth_acquires_;
  }
  [[nodiscard]] std::size_t bfs_acquires() const { return bfs_acquires_; }

 private:
  GrowthScratch growth_;
  BfsScratch bfs_;
  // Atomic so that the two-threads-race misuse the guard exists to catch
  // is caught deterministically (exchange in acquire), not itself a data
  // race on a plain bool.
  std::atomic<bool> growth_in_use_{false};
  std::atomic<bool> bfs_in_use_{false};
  std::size_t growth_acquires_ = 0;
  std::size_t bfs_acquires_ = 0;
};

}  // namespace gclus
