#include "api/run_context.hpp"

#include "common/check.hpp"
#include "par/thread_pool.hpp"

namespace gclus {

ThreadPool& RunContext::pool_or_global() const {
  return pool != nullptr ? *pool : ThreadPool::global();
}

bool RecordingTelemetry::has(const std::string& key) const {
  for (const auto& [k, v] : events_) {
    if (k == key) return true;
  }
  return false;
}

double RecordingTelemetry::value(const std::string& key) const {
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->first == key) return it->second;
  }
  GCLUS_CHECK(false, "telemetry key never recorded: ", key);
  return 0.0;
}

}  // namespace gclus
