#include "api/workspace.hpp"

#include "common/check.hpp"

namespace gclus {

namespace {

template <typename T>
void ensure_atomic_capacity(std::vector<T>& v, std::size_t n) {
  // std::atomic/atomic_flag are neither copyable nor movable, so a too-small
  // vector is replaced wholesale; a large-enough one is kept as-is (kernels
  // index only [0, n)).
  if (v.size() < n) v = std::vector<T>(n);
}

template <typename T>
std::size_t nested_bytes(const std::vector<std::vector<T>>& vv) {
  std::size_t total = 0;
  for (const auto& v : vv) total += v.capacity() * sizeof(T);
  return total;
}

}  // namespace

void GrowthScratch::ensure(NodeId n, std::size_t workers) {
  ensure_atomic_capacity(claim, n);
  ensure_atomic_capacity(committing, n);
  ensure_atomic_capacity(frontier_bits, (static_cast<std::size_t>(n) + 63) / 64);
  covered.resize(n);
  dist.resize(n);
  uncovered_candidates.resize(n);
  if (proposals.size() < workers) proposals.resize(workers);
  if (next_frontier.size() < workers) next_frontier.resize(workers);
  if (sample.size() < workers) sample.resize(workers);
}

std::size_t GrowthScratch::bytes() const {
  return claim.size() * sizeof(claim[0]) + covered.capacity() +
         committing.size() * sizeof(committing[0]) +
         dist.capacity() * sizeof(Dist) +
         frontier_bits.size() * sizeof(frontier_bits[0]) +
         frontier.capacity() * sizeof(NodeId) +
         uncovered_candidates.capacity() * sizeof(NodeId) +
         nested_bytes(proposals) + nested_bytes(next_frontier) +
         nested_bytes(sample);
}

void BfsScratch::ensure(NodeId n, std::size_t workers) {
  ensure_atomic_capacity(dist, n);
  if (local_next.size() < workers) local_next.resize(workers);
  frontier.clear();
  candidates.clear();
}

std::size_t BfsScratch::bytes() const {
  return dist.size() * sizeof(dist[0]) + frontier.capacity() * sizeof(NodeId) +
         candidates.capacity() * sizeof(NodeId) + nested_bytes(local_next);
}

GrowthScratch* Workspace::acquire_growth(NodeId n, std::size_t workers) {
  GCLUS_CHECK(!growth_in_use_.exchange(true),
              "Workspace growth scratch is already lent to a live GrowthState;"
              " use one Workspace per concurrent run");
  ++growth_acquires_;
  growth_.ensure(n, workers);
  return &growth_;
}

void Workspace::release_growth(const GrowthScratch* s) {
  GCLUS_CHECK(s == &growth_ && growth_in_use_.exchange(false),
              "release_growth of a scratch this Workspace did not lend");
}

BfsScratch* Workspace::acquire_bfs(NodeId n, std::size_t workers) {
  GCLUS_CHECK(!bfs_in_use_.exchange(true),
              "Workspace BFS scratch is already lent to a live traversal;"
              " use one Workspace per concurrent run");
  ++bfs_acquires_;
  bfs_.ensure(n, workers);
  return &bfs_;
}

void Workspace::release_bfs(const BfsScratch* s) {
  GCLUS_CHECK(s == &bfs_ && bfs_in_use_.exchange(false),
              "release_bfs of a scratch this Workspace did not lend");
}

std::size_t Workspace::bytes() const { return growth_.bytes() + bfs_.bytes(); }

}  // namespace gclus
