// RunContext — the execution environment shared by every algorithm entry
// point in the library.
//
// Before this existed each algorithm's options struct copy-pasted the same
// three fields (seed, ThreadPool*, GrowthOptions) with drifting coverage —
// DiameterOptions, for instance, had no growth knobs at all, so the
// direction-optimizing engine under it could not be tuned.  Now every
// XOptions struct *is a* RunContext (public inheritance), so:
//   * existing call sites (`opts.seed = 7; opts.pool = &pool;`) compile
//     unchanged;
//   * pipelines propagate the whole environment in one assignment
//     (`copts.context() = options.context();`) instead of field-by-field;
//   * cross-cutting additions — the telemetry sink, the reusable
//     Workspace — reach every algorithm at once.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/traversal.hpp"

namespace gclus {

class ThreadPool;
class Workspace;

/// Receiver for named scalar metrics emitted during a run (iteration
/// counts, R_ALG, growth steps...).  Implementations must tolerate calls
/// from the thread invoking the algorithm (never from pool workers).
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void record(const char* key, double value) = 0;
};

/// TelemetrySink that keeps every event in emission order; the registry
/// adapters and benches read algorithm by-products (e.g. "cluster2.r_alg")
/// from it instead of widening return types.
class RecordingTelemetry final : public TelemetrySink {
 public:
  void record(const char* key, double value) override {
    events_.emplace_back(key, value);
  }

  [[nodiscard]] bool has(const std::string& key) const;

  /// Last recorded value for `key`; aborts if absent.
  [[nodiscard]] double value(const std::string& key) const;

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& events()
      const {
    return events_;
  }

  void clear() { events_.clear(); }

 private:
  std::vector<std::pair<std::string, double>> events_;
};

struct RunContext {
  /// Master seed; all per-phase randomness derives from it (derive_seed /
  /// counter-based keyed draws), so a RunContext is a complete replay key.
  std::uint64_t seed = 1;

  /// Thread pool; nullptr means the process-global pool.
  ThreadPool* pool = nullptr;

  /// Direction-optimizing growth-engine knobs (push/pull heuristic).
  GrowthOptions growth = default_growth_options();

  /// Optional metric sink; nullptr drops emissions.
  TelemetrySink* telemetry = nullptr;

  /// Optional reusable scratch memory; nullptr allocates per run (the
  /// pre-Workspace behavior, still right for one-shot calls).
  Workspace* workspace = nullptr;

  [[nodiscard]] ThreadPool& pool_or_global() const;

  /// Sub-stream seed for a named phase (see the tag registry in rng.hpp).
  [[nodiscard]] std::uint64_t derived_seed(std::uint64_t tag) const {
    return derive_seed(seed, tag);
  }

  void emit(const char* key, double value) const {
    if (telemetry != nullptr) telemetry->record(key, value);
  }

  /// The RunContext slice of a derived options struct — lets pipelines
  /// forward the full environment to a sub-phase in one assignment.
  [[nodiscard]] RunContext& context() { return *this; }
  [[nodiscard]] const RunContext& context() const { return *this; }
};

}  // namespace gclus
