// Deterministic random number generation.
//
// All randomness in the library flows from a single 64-bit seed through
// *counter-based* hashing: a decision attached to logical coordinates
// (seed, stream, counter) is computed by mixing those coordinates, never by
// advancing shared mutable state.  This makes every randomized algorithm a
// pure function of (input, seed) regardless of how work is scheduled across
// threads — the property the cross-implementation equivalence tests rely on.
#pragma once

#include <cstdint>

namespace gclus {

/// Finalizer from SplitMix64 (Steele et al.); a high-quality 64-bit mixer.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines coordinates into a single well-mixed 64-bit value.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return mix64(a ^ (mix64(b) + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b,
                                     std::uint64_t c) {
  return hash_combine(hash_combine(a, b), c);
}

/// Derives an independent sub-stream seed from a base seed and a phase tag.
/// Every sub-phase that needs its own randomness (the preliminary CLUSTER
/// run inside CLUSTER2, the decomposition inside the distance-oracle build,
/// the spanner pass of the MR diameter pipeline) goes through this one
/// helper with a named tag below, so identical base seeds give identical
/// results across every entry point — direct calls and the registry alike —
/// and no call site improvises its own mixing.
///
/// Phases whose draws are already *counter-based* (keyed_bernoulli /
/// keyed_exponential over (seed, phase, node) coordinates) do not need a
/// derived seed: the coordinates are the stream.  In particular, the
/// weighted decomposition's per-wave center draws intentionally share
/// CLUSTER's exact (seed, iteration, node) coordinates — that equality is
/// what makes it degenerate to CLUSTER step-for-step on unit weights.
constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t tag) {
  return hash_combine(base, tag);
}

/// Registry of derivation tags.  Values are frozen: changing one silently
/// reshuffles every decomposition computed under the owning phase.
inline constexpr std::uint64_t kSeedTagCluster2Prelim = 0xC1;
inline constexpr std::uint64_t kSeedTagOracleBuild = 0x0AC1E;
inline constexpr std::uint64_t kSeedTagMrSpanner = 0x5B;

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
/// Used where a *sequential* stream is convenient (generators, shuffles).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      sm += 0x9e3779b97f4a7c15ULL;
      word = mix64(sm);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Lemire's multiply-shift rejection method.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool next_bool(double p) { return next_double() < p; }

  /// Exponential with rate `beta` (mean 1/beta), via inverse transform.
  double next_exponential(double beta);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Counter-based uniform double in [0,1) for coordinates (seed, a, b).
/// Schedule-independent: any thread evaluating the same coordinates gets
/// the same value.
double keyed_uniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b);

/// Counter-based Bernoulli(p) draw for coordinates (seed, a, b).
bool keyed_bernoulli(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                     double p);

/// Counter-based Exp(beta) draw for coordinates (seed, a).
double keyed_exponential(std::uint64_t seed, std::uint64_t a, double beta);

}  // namespace gclus
