#include "common/timer.hpp"

// Header-only today; the translation unit pins the library's symbols and
// keeps a stable home if out-of-line members are added later.
