#include "common/rng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace gclus {

std::uint64_t Rng::next_below(std::uint64_t bound) {
  GCLUS_CHECK(bound > 0);
  // Lemire (2019): multiply a 64-bit draw by the bound and keep the high
  // word; reject draws falling into the biased low fringe.
  using u128 = unsigned __int128;
  std::uint64_t x = next_u64();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_exponential(double beta) {
  GCLUS_CHECK(beta > 0.0);
  // Inverse transform; 1-u avoids log(0).
  return -std::log1p(-next_double()) / beta;
}

double keyed_uniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  const std::uint64_t h = hash_combine(seed, a, b);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool keyed_bernoulli(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                     double p) {
  return keyed_uniform(seed, a, b) < p;
}

double keyed_exponential(std::uint64_t seed, std::uint64_t a, double beta) {
  GCLUS_CHECK(beta > 0.0);
  const double u = keyed_uniform(seed, a, 0x5eedF00dULL);
  return -std::log1p(-u) / beta;
}

}  // namespace gclus
