#include "common/faultpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/check.hpp"
#include "common/parse.hpp"

namespace gclus::fault {

namespace {

// The central declaration table.  Sorted; all_fault_points() is the
// enumeration the fault-sweep suite iterates, so a new call site MUST add
// its name here (evaluating an undeclared name aborts).
constexpr const char* kFaultPoints[] = {
    "artifact.load",     // oracle artifact sidecar reads as corrupt
    "artifact.publish",  // fsync/rename of the published artifact fails
    "artifact.write",    // artifact temp-file write fails
    "cache.load",     // cached CSR v2 entry reads as corrupt
    "cache.publish",  // fsync/rename of the published cache entry fails
    "cache.write",    // cache temp-file write fails
    "io.mmap",        // mmap of a CSR v2 / edge-list file fails
    "io.open",        // opening a graph file for reading fails
    "io.read",        // whole-file read fails
    "io.write",       // CSR v2 write fails
    "net.accept",     // accepting a client connection fails (transient)
    "net.read",       // reading a frame from a socket fails (transient)
    "net.write",      // writing a frame to a socket fails (transient)
    "spill.flush",    // sealing (fflush) a spill partition file fails
    "spill.mkdir",    // creating the spill directory fails
    "spill.open",     // opening a partition run file fails
    "spill.read",     // run refill short-reads (transient)
    "spill.seek",     // seeking within a partition file fails
    "spill.write",    // run append short-writes (transient)
};

struct PointState {
  FaultSpec spec;
  std::uint64_t hits = 0;
  std::uint64_t triggers = 0;
  std::uint64_t draws = 0;  // Bernoulli evaluations consumed
};

struct Registry {
  std::mutex mu;
  std::map<std::string, PointState, std::less<>> points;

  Registry() {
    for (const char* name : kFaultPoints) points.emplace(name, PointState{});
  }
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a_str(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Parses one "name:spec" clause; false (with a stderr note) on bad syntax.
bool parse_clause(std::string_view clause, Registry& reg) {
  const std::size_t colon = clause.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  const std::string_view name = clause.substr(0, colon);
  const std::string_view spec_text = clause.substr(colon + 1);
  const auto it = reg.points.find(name);
  if (it == reg.points.end()) {
    std::fprintf(stderr,
                 "GCLUS_FAULT: unknown fault point '%.*s' (see "
                 "fault::all_fault_points()); ignored\n",
                 static_cast<int>(name.size()), name.data());
    return true;  // the clause itself was well-formed
  }

  FaultSpec spec;
  if (spec_text == "once") {
    spec = FaultSpec::once();
  } else if (spec_text == "always") {
    spec = FaultSpec::always();
  } else if (spec_text.rfind("p=", 0) == 0) {
    // "p=0.1" or "p=0.1,seed=S"
    const std::string text(spec_text.substr(2));
    char* end = nullptr;
    const double p = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || p < 0.0 || p > 1.0) return false;
    std::uint64_t seed = 0;
    if (*end == ',') {
      const std::string_view rest(end + 1);
      if (rest.rfind("seed=", 0) != 0) return false;
      const StatusOr<std::uint64_t> parsed = parse_u64(rest.substr(5));
      if (!parsed.ok()) return false;
      seed = *parsed;
    } else if (*end != '\0') {
      return false;
    }
    spec = FaultSpec::probability(p, seed);
  } else {
    const StatusOr<std::uint64_t> n = parse_u64(spec_text);
    if (!n.ok()) return false;
    spec = FaultSpec::first_n(*n);
  }
  it->second.spec = spec;
  return true;
}

/// Applies GCLUS_FAULT once, before the first arm()/should_fail().
void apply_env(Registry& reg) {
  const char* env = std::getenv("GCLUS_FAULT");
  if (env == nullptr || *env == '\0') return;
  std::string_view text(env);
  while (!text.empty()) {
    const std::size_t semi = text.find(';');
    const std::string_view clause = text.substr(0, semi);
    if (!clause.empty() && !parse_clause(clause, reg)) {
      std::fprintf(stderr,
                   "GCLUS_FAULT: malformed clause '%.*s' (expected "
                   "name:once|always|N|p=P[,seed=S]); ignored\n",
                   static_cast<int>(clause.size()), clause.data());
    }
    if (semi == std::string_view::npos) break;
    text.remove_prefix(semi + 1);
  }
}

Registry& configured_registry() {
  static std::once_flag once;
  Registry& reg = registry();
  std::call_once(once, [&] {
    std::lock_guard<std::mutex> lock(reg.mu);
    apply_env(reg);
  });
  return reg;
}

PointState& state_or_die(Registry& reg, std::string_view name) {
  const auto it = reg.points.find(name);
  GCLUS_CHECK(it != reg.points.end(), "fault point not declared: ", name,
              " (add it to kFaultPoints in faultpoint.cpp)");
  return it->second;
}

}  // namespace

std::span<const char* const> all_fault_points() { return kFaultPoints; }

bool is_registered(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.points.find(name) != reg.points.end();
}

void arm(std::string_view name, FaultSpec spec) {
  Registry& reg = configured_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  state_or_die(reg, name).spec = spec;
}

void disarm(std::string_view name) {
  Registry& reg = configured_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  PointState& st = state_or_die(reg, name);
  st.spec = FaultSpec::off();
  st.draws = 0;
}

void disarm_all() {
  Registry& reg = configured_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, st] : reg.points) {
    st.spec = FaultSpec::off();
    st.draws = 0;
  }
}

std::uint64_t hit_count(std::string_view name) {
  Registry& reg = configured_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return state_or_die(reg, name).hits;
}

std::uint64_t trigger_count(std::string_view name) {
  Registry& reg = configured_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return state_or_die(reg, name).triggers;
}

std::uint64_t total_triggers() {
  Registry& reg = configured_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::uint64_t total = 0;
  for (const auto& [name, st] : reg.points) total += st.triggers;
  return total;
}

std::vector<std::pair<std::string, std::uint64_t>> triggered_counters() {
  Registry& reg = configured_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [name, st] : reg.points) {
    if (st.triggers > 0) out.emplace_back(name, st.triggers);
  }
  return out;
}

void reset_counters() {
  Registry& reg = configured_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, st] : reg.points) {
    st.hits = 0;
    st.triggers = 0;
    st.draws = 0;
  }
}

bool should_fail(std::string_view name) {
  Registry& reg = configured_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  PointState& st = state_or_die(reg, name);
  ++st.hits;
  bool fire = false;
  switch (st.spec.mode) {
    case FaultSpec::Mode::kOff:
      break;
    case FaultSpec::Mode::kFirstN:
      if (st.spec.n > 0) {
        --st.spec.n;
        fire = true;
      }
      break;
    case FaultSpec::Mode::kAlways:
      fire = true;
      break;
    case FaultSpec::Mode::kProbability: {
      // Per-point stream keyed on (seed, name): counter-mode splitmix64,
      // so the draw sequence is a pure function of the spec, independent
      // of what other points do.
      const std::uint64_t key = st.spec.seed ^ fnv1a_str(name);
      const std::uint64_t draw = splitmix64(key + st.draws++);
      const double u =
          static_cast<double>(draw >> 11) * 0x1.0p-53;  // [0, 1)
      fire = u < st.spec.p;
      break;
    }
  }
  if (fire) ++st.triggers;
  return fire;
}

}  // namespace gclus::fault
