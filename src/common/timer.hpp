// Wall-clock timing helpers used by the benchmark harness and the MR
// engine's per-round accounting.
#pragma once

#include <chrono>
#include <cstdint>

namespace gclus {

/// Monotonic stopwatch.  Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] std::int64_t elapsed_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across start/stop intervals (e.g. per-phase totals).
class AccumTimer {
 public:
  void start() { t_.reset(); }
  void stop() { total_s_ += t_.elapsed_s(); }
  [[nodiscard]] double total_s() const { return total_s_; }

 private:
  Timer t_;
  double total_s_ = 0.0;
};

}  // namespace gclus
