// Recoverable error handling: Status / StatusOr<T>.
//
// GCLUS_CHECK remains the right tool for API contract violations (caller
// bugs), but environmental failures — truncated files, checksum
// mismatches, unwritable spill directories, ENOSPC mid-shuffle — must be
// reportable to a long-lived caller instead of aborting the process.
// Functions on those paths return Status (or StatusOr<T> when they
// produce a value); callers propagate with GCLUS_RETURN_IF_ERROR /
// GCLUS_ASSIGN_OR_RETURN or translate into their own failure domain (the
// CLI exits 2, the dataset cache regenerates, the MR engine degrades to
// in-memory shuffle).
//
// Code taxonomy (who is at fault / what to do about it):
//   kInvalidArgument    the input is not what it claims to be (bad magic,
//                       unknown flags, malformed parameter) — reject.
//   kDataLoss           the input was once valid but is no longer intact
//                       (truncation, checksum mismatch, torn spill run) —
//                       reject; regenerate if a builder exists.
//   kIoError            the environment failed hard (open/seek/write
//                       error) — fail over or report.
//   kResourceExhausted  out of disk/memory budget (ENOSPC) — degrade.
//   kUnavailable        transient (EINTR/EAGAIN/short write) — retry with
//                       backoff; escalates to kIoError when retries are
//                       exhausted.
//
// Transient-error retry uses one process-wide policy (io_retry_policy),
// tunable via GCLUS_IO_RETRIES / GCLUS_IO_BACKOFF_US.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/check.hpp"

namespace gclus {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kDataLoss,
  kIoError,
  kResourceExhausted,
  kUnavailable,
};

/// Stable upper-snake name ("DATA_LOSS") for messages and CLI output.
[[nodiscard]] const char* status_code_name(StatusCode code);

class [[nodiscard]] Status {
 public:
  /// OK.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    GCLUS_DCHECK(code != StatusCode::kOk || message_.empty(),
                 "OK status carries no message");
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// True for errors worth retrying with backoff.
  [[nodiscard]] bool transient() const {
    return code_ == StatusCode::kUnavailable;
  }

  /// Prepends "context: " to the message — call sites add what they know
  /// (the path, the partition) as the error travels up.
  Status&& with_context(std::string_view context) && {
    if (!ok()) message_.insert(0, std::string(context) + ": ");
    return std::move(*this);
  }

  /// "DATA_LOSS: truncated CSR v2 file ..." (or "OK").
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

[[nodiscard]] inline Status OkStatus() { return {}; }
[[nodiscard]] inline Status InvalidArgumentError(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
[[nodiscard]] inline Status DataLossError(std::string msg) {
  return {StatusCode::kDataLoss, std::move(msg)};
}
[[nodiscard]] inline Status IoError(std::string msg) {
  return {StatusCode::kIoError, std::move(msg)};
}
[[nodiscard]] inline Status ResourceExhaustedError(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
[[nodiscard]] inline Status UnavailableError(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}

/// Maps an errno to the taxonomy above (EINTR/EAGAIN → kUnavailable,
/// ENOSPC/EDQUOT/ENOMEM → kResourceExhausted, everything else kIoError)
/// with "context: strerror" as the message.
[[nodiscard]] Status status_from_errno(int err, std::string_view context);

/// A Status or a value; exactly one is active.  Error construction from a
/// Status must carry a non-OK code.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(*-explicit*)
    GCLUS_CHECK(!status_.ok(),
                "StatusOr constructed from OK status without a value");
  }
  StatusOr(T value)  // NOLINT(*-explicit-constructor)
      : value_(std::move(value)) {}

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const& { return status_; }
  [[nodiscard]] Status status() && { return std::move(status_); }

  /// Value accessors check ok() — touching the value of an error is a
  /// caller bug, not an environmental failure.
  [[nodiscard]] T& value() & {
    GCLUS_CHECK(ok(), "StatusOr::value on error: ", status_.to_string());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    GCLUS_CHECK(ok(), "StatusOr::value on error: ", status_.to_string());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    GCLUS_CHECK(ok(), "StatusOr::value on error: ", status_.to_string());
    return *std::move(value_);
  }

  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T&& operator*() && { return std::move(*this).value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Bounded exponential backoff for kUnavailable errors.  `attempts` counts
/// total tries (first try included), so 1 disables retry entirely.
struct RetryPolicy {
  int attempts = 4;
  std::uint32_t initial_backoff_us = 100;
  double multiplier = 4.0;
};

/// The process-wide policy: GCLUS_IO_RETRIES (total attempts, >= 1) and
/// GCLUS_IO_BACKOFF_US (first sleep; later sleeps multiply by 4).
[[nodiscard]] const RetryPolicy& io_retry_policy();

namespace detail {
void backoff_sleep_us(std::uint32_t us);
}  // namespace detail

/// Runs `fn` (any Status-returning callable) under `policy`: transient
/// errors sleep and retry; the final transient error is escalated to
/// kIoError so callers never see kUnavailable escape a retry loop.
/// `retries`, when non-null, accumulates the number of retries performed.
template <typename Fn>
Status retry_transient(const RetryPolicy& policy, Fn&& fn,
                       std::uint64_t* retries = nullptr) {
  double backoff_us = policy.initial_backoff_us;
  for (int attempt = 1;; ++attempt) {
    Status st = fn();
    if (!st.transient()) return st;
    if (attempt >= policy.attempts) {
      return Status(StatusCode::kIoError,
                    st.message() + " (giving up after " +
                        std::to_string(attempt) + " attempts)");
    }
    if (retries != nullptr) ++*retries;
    detail::backoff_sleep_us(static_cast<std::uint32_t>(backoff_us));
    backoff_us *= policy.multiplier;
  }
}

}  // namespace gclus

/// Propagates a non-OK Status from any Status-returning expression.
#define GCLUS_RETURN_IF_ERROR(expr)                   \
  do {                                                \
    if (auto _gclus_st = (expr); !_gclus_st.ok()) {   \
      return _gclus_st;                               \
    }                                                 \
  } while (0)

#define GCLUS_STATUS_CONCAT_INNER_(a, b) a##b
#define GCLUS_STATUS_CONCAT_(a, b) GCLUS_STATUS_CONCAT_INNER_(a, b)

/// `GCLUS_ASSIGN_OR_RETURN(auto x, LoadThing(path));` — unwraps a
/// StatusOr into `lhs` or returns its error.
#define GCLUS_ASSIGN_OR_RETURN(lhs, expr)                            \
  GCLUS_ASSIGN_OR_RETURN_IMPL_(                                      \
      GCLUS_STATUS_CONCAT_(_gclus_statusor_, __COUNTER__), lhs, expr)

#define GCLUS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) {                                   \
    return std::move(tmp).status();                  \
  }                                                  \
  lhs = std::move(tmp).value()
