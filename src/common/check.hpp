// Lightweight runtime checks.
//
// GCLUS_CHECK is always on (used for API contract violations: the cost is
// negligible next to the graph kernels).  GCLUS_DCHECK compiles away in
// release builds and guards internal invariants on hot paths.
//
// Extra arguments after the condition are streamed into the failure
// message: GCLUS_CHECK(ok, "bad τ=", tau).
#pragma once

#include <sstream>
#include <string>

namespace gclus::detail {

/// Prints the failure message and aborts.  Out of line so the macro body
/// stays tiny and the happy path inlines well.
[[noreturn]] void check_failed(const char* cond, const char* file, int line,
                               const std::string& msg);

template <typename... Args>
std::string format_message(const Args&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return {};
  } else {
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
  }
}

}  // namespace gclus::detail

#define GCLUS_CHECK(cond, ...)                                             \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      ::gclus::detail::check_failed(                                       \
          #cond, __FILE__, __LINE__,                                       \
          ::gclus::detail::format_message(__VA_ARGS__));                   \
    }                                                                      \
  } while (0)

#ifndef NDEBUG
#define GCLUS_DCHECK(cond, ...) GCLUS_CHECK(cond, ##__VA_ARGS__)
#else
#define GCLUS_DCHECK(cond, ...) \
  do {                          \
  } while (0)
#endif
