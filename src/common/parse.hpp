// Strict numeric parsing, shared by every flag / parameter / environment
// reader in the tree.
//
// Before this header existed the repo had five copy-pasted strtoull
// wrappers (QueryServer env defaults, the MR engine's spill overrides,
// registry parameter validation, and two example CLIs) plus one bare
// atoi, each with its own idea of what "invalid" means — some accepted
// "64k", some accepted "-1" wrapped modulo 2^64, some silently returned
// 0.  parse_u64 is the single definition: a value parses iff it is a
// nonempty run of decimal digits that fits in 64 bits.  No sign, no
// leading/trailing whitespace, no trailing garbage, no silent overflow
// wrap — every caller rejects the same inputs, so "GCLUS_SERVER_WORKERS=8
// " failing in one subsystem cannot quietly succeed in another.
//
// env_u64 adds the environment-variable policy on top: unset/empty reads
// as the fallback (the normal case), while a *malformed* or out-of-range
// value is reported once to stderr and also falls back — configuration
// typos must be visible, but an env typo aborting a long decomposition
// would be worse than the typo.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/status.hpp"

namespace gclus {

/// Parses a base-10 unsigned 64-bit integer.  kInvalidArgument unless
/// `text` is entirely decimal digits and the value fits in a u64:
/// "", "12x", " 7", "+3", "-0", and 2^64 are all rejected; "007" is 7.
[[nodiscard]] StatusOr<std::uint64_t> parse_u64(std::string_view text);

/// Reads the environment variable `name` through parse_u64.  Returns
/// `fallback` when the variable is unset or empty; when it is set but
/// malformed or parses below `minimum`, warns on stderr (naming the
/// variable and the offending value) and returns `fallback`.
[[nodiscard]] std::uint64_t env_u64(const char* name, std::uint64_t fallback,
                                    std::uint64_t minimum = 0);

}  // namespace gclus
