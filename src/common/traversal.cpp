#include "common/traversal.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gclus {

const char* traversal_mode_name(TraversalMode mode) {
  switch (mode) {
    case TraversalMode::kPushOnly:
      return "push";
    case TraversalMode::kPullOnly:
      return "pull";
    case TraversalMode::kAuto:
      break;
  }
  return "auto";
}

bool decide_direction(bool pulling, std::size_t frontier_size,
                      std::size_t num_nodes,
                      std::uint64_t frontier_degree_sum,
                      std::uint64_t remaining_degree_sum,
                      const GrowthOptions& options) {
  switch (options.mode) {
    case TraversalMode::kPushOnly:
      return false;
    case TraversalMode::kPullOnly:
      return true;
    case TraversalMode::kAuto:
      break;
  }
  if (pulling) {
    return static_cast<double>(frontier_size) >=
           static_cast<double>(num_nodes) / options.beta;
  }
  return static_cast<double>(frontier_degree_sum) >
         static_cast<double>(remaining_degree_sum) / options.alpha;
}

GrowthOptions default_growth_options() {
  static const GrowthOptions cached = [] {
    GrowthOptions o;
    if (const char* env = std::getenv("GCLUS_GROWTH_MODE")) {
      if (std::strcmp(env, "push") == 0) {
        o.mode = TraversalMode::kPushOnly;
      } else if (std::strcmp(env, "pull") == 0) {
        o.mode = TraversalMode::kPullOnly;
      } else {
        if (std::strcmp(env, "auto") != 0) {
          std::fprintf(stderr,
                       "GCLUS_GROWTH_MODE=%s not recognized "
                       "(expected push|pull|auto); using auto\n",
                       env);
        }
        o.mode = TraversalMode::kAuto;
      }
    }
    if (const char* env = std::getenv("GCLUS_GROWTH_ALPHA")) {
      const double v = std::strtod(env, nullptr);
      if (v > 0.0) o.alpha = v;
    }
    if (const char* env = std::getenv("GCLUS_GROWTH_BETA")) {
      const double v = std::strtod(env, nullptr);
      if (v > 0.0) o.beta = v;
    }
    if (const char* env = std::getenv("GCLUS_GROWTH_LOG")) {
      o.log_decisions = env[0] != '\0' && env[0] != '0';
    }
    return o;
  }();
  return cached;
}

}  // namespace gclus
