// Direction-optimizing traversal knobs shared by the cluster-growth engine
// and the level-synchronous BFS.
//
// Both kernels expand a frontier one hop per synchronous step and can do so
// in either direction:
//   * push (top-down): frontier nodes write claims to their uncovered
//     neighbors — work proportional to the frontier's degree sum;
//   * pull (bottom-up): uncovered nodes scan their own neighbors for a
//     covered claimant — work proportional to the uncovered degree sum,
//     with no write contention.
// The classic degree-sum heuristic (Beamer et al., "Direction-Optimizing
// Breadth-First Search") switches per step: go pull when the frontier's
// degree sum exceeds 1/alpha of the uncovered degree sum, and back to push
// once the frontier shrinks below 1/beta of the node count.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gclus {

enum class TraversalMode {
  kAuto,      // per-step degree-sum heuristic (the default)
  kPushOnly,  // always top-down (the classic engine; reference behavior)
  kPullOnly,  // always bottom-up (useful for testing and ablations)
};

struct GrowthOptions {
  TraversalMode mode = TraversalMode::kAuto;

  /// Switch push -> pull when frontier_degree_sum > uncovered_degree_sum
  /// / alpha.  Larger alpha switches to pull earlier.
  double alpha = 15.0;

  /// Switch pull -> push when the frontier holds fewer than num_nodes /
  /// beta nodes.  Larger beta switches back to push later.
  double beta = 18.0;

  /// Log every per-step direction decision to stderr.
  bool log_decisions = false;

  /// Keep a per-step GrowthStepLog in GrowthStats::steps.  Off by default:
  /// a growth over a high-diameter graph executes one step per hop, and
  /// the log would grow with the diameter for callers that never read it.
  /// The scalar push/pull counters are always maintained.
  bool record_step_log = false;
};

/// Returns the mnemonic name of a mode ("push", "pull", "auto").
const char* traversal_mode_name(TraversalMode mode);

/// Per-direction step/level counters reported by the traversal kernels.
struct DirectionCounts {
  std::size_t push = 0;
  std::size_t pull = 0;
};

/// The per-step direction decision shared by the growth engine and BFS:
/// pinned modes win outright; under kAuto the hysteresis state machine
/// switches push -> pull when the frontier degree sum exceeds
/// remaining_degree_sum / alpha and back once the frontier shrinks below
/// num_nodes / beta.  `pulling` is the previous step's decision; returns
/// the new one.
[[nodiscard]] bool decide_direction(bool pulling, std::size_t frontier_size,
                                    std::size_t num_nodes,
                                    std::uint64_t frontier_degree_sum,
                                    std::uint64_t remaining_degree_sum,
                                    const GrowthOptions& options);

/// Shared policy for the lazily-compacted uncovered/unvisited worklists:
/// compact once more than half the entries are stale, but never bother
/// below 1024 entries.
[[nodiscard]] inline bool worklist_needs_compaction(std::size_t size,
                                                    std::size_t remaining) {
  return size >= 1024 && size > 2 * remaining;
}

/// Process-wide default options: GrowthOptions{} overridden by the
/// GCLUS_GROWTH_MODE (push|pull|auto), GCLUS_GROWTH_ALPHA,
/// GCLUS_GROWTH_BETA, and GCLUS_GROWTH_LOG environment variables, read
/// once on first use.
GrowthOptions default_growth_options();

}  // namespace gclus
