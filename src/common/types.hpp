// Core scalar type aliases shared across the library.
//
// The library follows the paper's setting: unweighted, undirected graphs
// with up to tens of millions of nodes.  32-bit node ids keep the CSR
// arrays compact; edge offsets are 64-bit so graphs with more than 2^32
// directed half-edges remain representable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace gclus {

/// Node identifier (index into CSR arrays).
using NodeId = std::uint32_t;

/// Edge offset into the CSR adjacency array.
using EdgeId = std::uint64_t;

/// Cluster identifier produced by the decomposition algorithms.
using ClusterId = std::uint32_t;

/// Hop distance in an unweighted graph.
using Dist = std::uint32_t;

/// Edge weight in a weighted (quotient) graph.
using Weight = std::uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "not yet assigned to any cluster".
inline constexpr ClusterId kNoCluster = std::numeric_limits<ClusterId>::max();

/// Sentinel for "unreached" distances.
inline constexpr Dist kInfDist = std::numeric_limits<Dist>::max();

/// Sentinel for "unreached" weighted distances.
inline constexpr Weight kInfWeight = std::numeric_limits<Weight>::max();

}  // namespace gclus
