// Deterministic fault injection for the I/O-facing layers.
//
// A *fault point* is a named site on a failure path — "spill.write",
// "io.mmap", "cache.publish" — that can be forced to fail on demand.  The
// call site asks GCLUS_FAULTPOINT("name") whether to simulate a failure
// and, when told to, synthesizes the same error Status (or short
// read/write) the real environment would produce, so the recovery code
// under test is the production recovery code, not a test double.
//
// Every point is declared once in the central table (kFaultPoints in
// faultpoint.cpp, enumerable via all_fault_points()), which is what lets
// the fault-sweep suite iterate *every* point deterministically instead
// of only the ones a given run happened to execute.  Evaluating an
// undeclared name is a contract violation (GCLUS_CHECK) so the table
// cannot silently drift from the call sites.
//
// Arming:
//   * programmatically: fault::arm("spill.write", fault::FaultSpec::once())
//   * from the environment: GCLUS_FAULT=spill.write:once
//         GCLUS_FAULT=io.mmap:3             first 3 evaluations fail
//         GCLUS_FAULT=cache.publish:always  every evaluation fails
//         GCLUS_FAULT=spill.write:p=0.1,seed=7   Bernoulli, derived per
//                                           point from (seed, name) so two
//                                           points never share a stream
//     Multiple specs separated by ';'.  A malformed spec is reported to
//     stderr once and ignored — fault injection must never be the thing
//     that crashes the process.
//
// Evaluations and triggers are counted per point (hit_count /
// trigger_count), so tests and CI can assert a sweep actually fired
// (satisfying "the sweep can't silently become a no-op"), and callers can
// surface the counters through TelemetrySink-style channels.
//
// All functions are thread-safe; counters are exact under concurrency.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gclus::fault {

struct FaultSpec {
  enum class Mode : std::uint8_t {
    kOff,          ///< never fires
    kFirstN,       ///< fires on the first `n` evaluations, then never
    kAlways,       ///< fires on every evaluation
    kProbability,  ///< fires with probability `p`, deterministic in `seed`
  };

  Mode mode = Mode::kOff;
  std::uint64_t n = 0;
  double p = 0.0;
  std::uint64_t seed = 0;

  [[nodiscard]] static FaultSpec off() { return {}; }
  [[nodiscard]] static FaultSpec once() { return first_n(1); }
  [[nodiscard]] static FaultSpec first_n(std::uint64_t n) {
    return {Mode::kFirstN, n, 0.0, 0};
  }
  [[nodiscard]] static FaultSpec always() {
    return {Mode::kAlways, 0, 0.0, 0};
  }
  [[nodiscard]] static FaultSpec probability(double p, std::uint64_t seed) {
    return {Mode::kProbability, 0, p, seed};
  }
};

/// Every fault point compiled into the library, sorted, no duplicates.
[[nodiscard]] std::span<const char* const> all_fault_points();

/// True iff `name` is in the compiled-in table.
[[nodiscard]] bool is_registered(std::string_view name);

/// Arms `name` (replacing any prior spec).  Unknown names abort: arming a
/// typo must not silently test nothing.
void arm(std::string_view name, FaultSpec spec);

/// Disarms one point / every point.  Counters are unaffected.
void disarm(std::string_view name);
void disarm_all();

/// Evaluations of / failures injected at `name` since process start (or
/// the last reset_counters()).
[[nodiscard]] std::uint64_t hit_count(std::string_view name);
[[nodiscard]] std::uint64_t trigger_count(std::string_view name);

/// Total failures injected across all points.
[[nodiscard]] std::uint64_t total_triggers();

/// Snapshot of (name, trigger_count) for every point with at least one
/// trigger — the shape TelemetrySink consumers want.
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
triggered_counters();

void reset_counters();

/// The evaluation primitive behind GCLUS_FAULTPOINT: counts the hit,
/// applies the armed spec (folding in GCLUS_FAULT on first use), counts
/// the trigger.  Near-zero cost while nothing is armed.
[[nodiscard]] bool should_fail(std::string_view name);

}  // namespace gclus::fault

/// True when the named fault point should simulate a failure here.
#define GCLUS_FAULTPOINT(name) ::gclus::fault::should_fail(name)
