#include "common/parse.hpp"

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

namespace gclus {

StatusOr<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) {
    return InvalidArgumentError("expected an unsigned integer, got \"\"");
  }
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return InvalidArgumentError("'" + std::string(text) +
                                  "' is not an unsigned integer");
    }
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (v > kMax / 10 || (v == kMax / 10 && digit > kMax % 10)) {
      return InvalidArgumentError("'" + std::string(text) +
                                  "' overflows a 64-bit unsigned integer");
    }
    v = v * 10 + digit;
  }
  return v;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback,
                      std::uint64_t minimum) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  const auto parsed = parse_u64(env);
  if (!parsed.ok() || *parsed < minimum) {
    std::fprintf(stderr,
                 "%s=%s is not a valid unsigned integer >= %llu; using %llu\n",
                 name, env, static_cast<unsigned long long>(minimum),
                 static_cast<unsigned long long>(fallback));
    return fallback;
  }
  return *parsed;
}

}  // namespace gclus
