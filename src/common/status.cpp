#include "common/status.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace gclus {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      break;
  }
  return "UNAVAILABLE";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status status_from_errno(int err, std::string_view context) {
  std::string msg(context);
  msg += ": ";
  msg += std::strerror(err);
  switch (err) {
    case EINTR:
    case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
      return UnavailableError(std::move(msg));
    case ENOSPC:
    case ENOMEM:
#ifdef EDQUOT
    case EDQUOT:
#endif
      return ResourceExhaustedError(std::move(msg));
    default:
      return IoError(std::move(msg));
  }
}

const RetryPolicy& io_retry_policy() {
  static const RetryPolicy policy = [] {
    RetryPolicy p;
    if (const char* env = std::getenv("GCLUS_IO_RETRIES")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1 && v <= 100) {
        p.attempts = static_cast<int>(v);
      }
    }
    if (const char* env = std::getenv("GCLUS_IO_BACKOFF_US")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 0 && v <= 10'000'000) {
        p.initial_backoff_us = static_cast<std::uint32_t>(v);
      }
    }
    return p;
  }();
  return policy;
}

namespace detail {

void backoff_sleep_us(std::uint32_t us) {
  if (us == 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace detail

}  // namespace gclus
