#include "common/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace gclus::detail {

void check_failed(const char* cond, const char* file, int line,
                  const std::string& msg) {
  std::fprintf(stderr, "GCLUS_CHECK failed: %s at %s:%d%s%s\n", cond, file,
               line, msg.empty() ? "" : " — ", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace gclus::detail
