// Remote load generator for the query-service network front end — the
// client half of scripts/test_net_soak.sh.
//
//   $ ./gclus_client --port-file=/tmp/port --dataset=mesh --queries=20000
//
//   --port=N                server port on 127.0.0.1
//   --port-file=PATH        poll PATH (written by gclus_serve) for the
//                           port instead; waits up to ~20s to appear
//   --graph=PATH            the graph the server is serving (edge-list
//   --dataset=NAME          text or CSR v2) — needed to size the query
//                           stream; exactly one is required
//   --artifacts=PATH        oracle artifact sidecar, for --verify
//                           (default: <graph>.orc / gclus_<dataset>.orc)
//   --verify                load the artifact locally and replay every
//                           answered batch through an in-process
//                           QueryEngine: any byte difference is exit 4 —
//                           the end-to-end proof that the wire answers
//                           are the engine's answers
//   --queries=N --batch=N   stream shape (defaults 10000 / 512)
//   --zipf=F --seed=N       stream content (defaults 0.8 / 11); the same
//                           triple on two clients names the same stream
//   --start-file=PATH       print "ready" on stderr after setup, then
//                           hold until PATH exists — lets a harness start
//                           several clients streaming at the same instant
//
// The final line is machine-readable:  answered=N refused=M
// (batches).  A server drain mid-stream is a *normal* outcome — refused
// batches exit 0; the soak harness asserts sum(answered) across clients
// equals the server's results_sent, i.e. no accepted batch was lost.
// Exit codes: 1 usage, 2 environment/Status failure (could not reach the
// server at all), 4 verification mismatch.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parse.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "graph/io.hpp"
#include "net/client.hpp"
#include "query_workload.hpp"
#include "server/engine.hpp"
#include "server/server.hpp"
#include "workloads/datasets.hpp"

namespace {

using namespace gclus;

std::uint64_t parse_u64_or_die(const std::string& key,
                               const std::string& value) {
  const StatusOr<std::uint64_t> v = parse_u64(value);
  if (!v.ok()) {
    std::fprintf(stderr, "--%s=%s is not an unsigned integer\n", key.c_str(),
                 value.c_str());
    std::exit(1);
  }
  return *v;
}

double parse_double_or_die(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || v < 0) {
    std::fprintf(stderr, "--%s=%s is not a nonnegative number\n", key.c_str(),
                 value.c_str());
    std::exit(1);
  }
  return v;
}

[[noreturn]] void die_status(const Status& st) {
  std::fprintf(stderr, "gclus_client: %s\n", st.to_string().c_str());
  std::exit(2);
}

/// Polls the port file gclus_serve publishes (atomic rename, so any
/// readable content is complete).
std::uint16_t wait_for_port_file(const std::string& path) {
  for (int attempt = 0; attempt < 2000; ++attempt) {
    std::ifstream in(path);
    std::string text;
    if (in >> text) {
      const StatusOr<std::uint64_t> port = parse_u64(text);
      if (port.ok() && *port > 0 && *port <= 65535) {
        return static_cast<std::uint16_t>(*port);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::fprintf(stderr, "gclus_client: no port appeared in %s\n", path.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string graph_path;
  std::string dataset;
  std::string artifact_path;
  std::string port_file;
  bool verify = false;
  std::uint64_t port = 0;
  bool have_port = false;
  std::uint64_t num_queries = 10000;
  std::uint64_t batch = 512;
  double zipf = 0.8;
  std::uint64_t seed = 11;
  std::string start_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verify") {
      verify = true;
      continue;
    }
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "unknown argument %s (flags are --KEY=VALUE)\n",
                   arg.c_str());
      return 1;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "port") {
      port = parse_u64_or_die(key, value);
      have_port = true;
    } else if (key == "port-file") {
      port_file = value;
    } else if (key == "graph") {
      graph_path = value;
    } else if (key == "dataset") {
      dataset = value;
    } else if (key == "artifacts") {
      artifact_path = value;
    } else if (key == "queries") {
      num_queries = parse_u64_or_die(key, value);
    } else if (key == "batch") {
      batch = parse_u64_or_die(key, value);
      if (batch == 0) {
        std::fprintf(stderr, "--batch must be positive\n");
        return 1;
      }
    } else if (key == "zipf") {
      zipf = parse_double_or_die(key, value);
    } else if (key == "seed") {
      seed = parse_u64_or_die(key, value);
    } else if (key == "start-file") {
      start_file = value;
    } else {
      std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
      return 1;
    }
  }
  if (have_port == !port_file.empty()) {
    std::fprintf(stderr,
                 "exactly one of --port=N or --port-file=PATH is required\n");
    return 1;
  }
  if (have_port && (port == 0 || port > 65535)) {
    std::fprintf(stderr, "--port=%llu is not a TCP port\n",
                 static_cast<unsigned long long>(port));
    return 1;
  }
  if (graph_path.empty() == dataset.empty()) {
    std::fprintf(stderr,
                 "exactly one of --graph=PATH or --dataset=NAME is required\n");
    return 1;
  }

  // ---- the graph (to size the stream; with --verify, also the engine) ----
  Graph g;
  if (!dataset.empty()) {
    g = workloads::load_dataset(dataset).graph;
    if (artifact_path.empty()) artifact_path = "gclus_" + dataset + ".orc";
  } else {
    StatusOr<Graph> loaded = io::is_csr_file(graph_path)
                                 ? io::load_csr(graph_path)
                                 : io::load_edge_list(graph_path);
    if (!loaded.ok()) die_status(loaded.status());
    g = std::move(loaded).value();
    if (artifact_path.empty()) artifact_path = graph_path + ".orc";
  }
  const NodeId n = g.num_nodes();

  StatusOr<server::QueryEngine> replay = InvalidArgumentError("unused");
  if (verify) {
    // Strictly load — a client that silently rebuilt a *different*
    // decomposition would report false mismatches.
    replay = server::QueryEngine::load(std::move(g), artifact_path);
    if (!replay.ok()) die_status(replay.status());
  }

  const std::uint16_t resolved_port =
      have_port ? static_cast<std::uint16_t>(port)
                : wait_for_port_file(port_file);
  auto client = net::Client::connect(resolved_port);
  if (!client.ok()) die_status(client.status());

  const std::vector<server::Query> stream =
      gclus_cli::make_queries(n, num_queries, zipf, seed);

  // Rendezvous for multi-process harnesses: all the expensive setup is
  // done, announce readiness and hold at the start line so concurrent
  // clients begin streaming together.
  if (!start_file.empty()) {
    std::fprintf(stderr, "ready\n");
    std::fflush(stderr);
    for (int attempt = 0; attempt < 6000; ++attempt) {
      if (std::ifstream(start_file).good()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  server::QueryScratch scratch;
  std::vector<ClusterId> neighborhood_buf;
  std::uint64_t answered = 0;
  std::uint64_t refused = 0;
  for (std::size_t off = 0; off < stream.size(); off += batch) {
    const std::size_t end = std::min(stream.size(), off + batch);
    const std::vector<server::Query> qs(
        stream.begin() + static_cast<long>(off),
        stream.begin() + static_cast<long>(end));
    const auto results = client->submit(qs);
    if (!results.ok()) {
      // The drain notice (or the reset that follows it) — a normal end of
      // service, not an environment failure.  Whatever is left of the
      // stream will never be accepted; count it refused and stop.
      refused += (stream.size() - off + batch - 1) / batch;
      std::fprintf(stderr, "gclus_client: stream ended early: %s\n",
                   results.status().to_string().c_str());
      break;
    }
    if (results->size() != qs.size()) {
      std::fprintf(stderr,
                   "gclus_client: %zu answers for %zu queries at offset %zu\n",
                   results->size(), qs.size(), off);
      return 4;
    }
    if (verify) {
      for (std::size_t i = 0; i < qs.size(); ++i) {
        const server::QueryResult local = server::execute_query(
            *replay, qs[i], scratch, neighborhood_buf);
        if (local != (*results)[i]) {
          std::fprintf(stderr,
                       "gclus_client: answer mismatch at query %zu: wire "
                       "(code=%u value=%llu) vs local (code=%u value=%llu)\n",
                       off + i, static_cast<unsigned>((*results)[i].code),
                       static_cast<unsigned long long>((*results)[i].value),
                       static_cast<unsigned>(local.code),
                       static_cast<unsigned long long>(local.value));
          return 4;
        }
      }
    }
    ++answered;
    if (answered == 1) {
      // Progress marker for multi-process harnesses (the soak test waits
      // for it before signalling the server, so the SIGTERM is guaranteed
      // to land mid-stream).
      std::fprintf(stderr, "streaming\n");
      std::fflush(stderr);
    }
  }
  std::printf("answered=%llu refused=%llu\n",
              static_cast<unsigned long long>(answered),
              static_cast<unsigned long long>(refused));
  return 0;
}
