// Quickstart: decompose a graph with CLUSTER(τ), inspect the clustering,
// and approximate the diameter — the library's two headline operations in
// ~40 lines.
//
//   $ ./quickstart
//
#include <cstdio>

#include "core/cluster.hpp"
#include "core/diameter.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

int main() {
  using namespace gclus;

  // A 200x200 mesh: 40,000 nodes, diameter 398, doubling dimension 2 —
  // the regime where the decomposition shines.
  const Graph g = gen::grid(200, 200);
  std::printf("graph: %u nodes, %llu edges\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  // --- Decompose with CLUSTER(τ).  τ controls granularity: expect
  // O(τ·log²n) clusters with near-optimal maximum radius (Theorem 1).
  ClusterOptions opts;
  opts.seed = 42;
  const Clustering clustering = cluster(g, /*tau=*/8, opts);
  std::printf("CLUSTER(8): %u clusters, max radius %u, %zu growth steps\n",
              clustering.num_clusters(), clustering.max_radius(),
              clustering.growth_steps);

  // Every node knows its cluster and its hop distance to the center.
  const NodeId probe = 12345;
  std::printf("node %u -> cluster %u at distance %u from center %u\n", probe,
              clustering.assignment[probe], clustering.dist_to_center[probe],
              clustering.centers[clustering.assignment[probe]]);

  // --- Approximate the diameter through the quotient graph (§4).
  DiameterOptions dopts;
  dopts.seed = 42;
  const DiameterApprox approx = approximate_diameter(g, /*tau=*/8, dopts);
  const Dist exact = exact_diameter(g).diameter;
  std::printf(
      "diameter: lower bound %u <= exact %u <= estimate %llu "
      "(quotient: %u nodes, growth steps: %zu vs %u BFS levels)\n",
      approx.lower_bound, exact,
      static_cast<unsigned long long>(approx.upper_bound),
      approx.quotient_nodes, approx.growth_steps, exact);
  return 0;
}
