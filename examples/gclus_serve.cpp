// CLI front-end of the decomposition query service — load a graph once,
// build or mmap the oracle artifact sidecar, and drive the concurrent
// query server against it.
//
//   $ ./gclus_serve --graph=edges.txt --build-artifacts
//   $ ./gclus_serve --graph=edges.txt --queries=100000 --workers=8
//
//   --graph=PATH            input graph: edge-list text or CSR v2
//                           (auto-sniffed, mmap-ed when possible)
//   --dataset=NAME          a workloads registry dataset instead of a file
//   --artifacts=PATH        oracle artifact sidecar (default: <graph>.orc)
//   --build-artifacts       decompose, publish the sidecar, and exit
//   --require-artifact      refuse to serve unless the sidecar loaded —
//                           proves a restart skipped the decomposition
//   --queries=N             total queries to serve (default 10000)
//   --batch=N               queries per submitted batch (default 512)
//   --workers=N             worker threads (0 = GCLUS_SERVER_WORKERS/4)
//   --queue-depth=N         max queued batches (0 = env/128)
//   --seed=N --tau=N        decomposition knobs (tau 0 = auto)
//   --zipf=F                query skew: sources ~ rank^-F (0 = uniform)
//   --fail-on-shed          exit 3 if any batch was shed
//   --listen=PORT           serve remote clients on 127.0.0.1:PORT instead
//                           of a local query stream (0 = ephemeral port);
//                           the artifact sidecar is watched for republish
//                           and hot-reloaded (GCLUS_NET_WATCH_MS).
//                           SIGTERM/SIGINT drain gracefully: every
//                           accepted batch is answered, then exit 0.
//   --port-file=PATH        atomically publish the bound port (for
//                           clients racing an ephemeral --listen=0)
//
// Exit codes follow decompose_file: 1 for usage errors, 2 for Status
// failures (one-line diagnostic on stderr), 3 for a violated serving
// contract (--fail-on-shed / --require-artifact).  CI's server smoke step
// runs --build-artifacts, then serves with both contract flags on; the
// network soak test (scripts/test_net_soak.sh) drives --listen with
// concurrent gclus_client processes and a mid-stream SIGTERM.
#include <csignal>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/run_context.hpp"
#include "common/faultpoint.hpp"
#include "common/parse.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/timer.hpp"
#include "graph/io.hpp"
#include "net/server.hpp"
#include "query_workload.hpp"
#include "server/engine.hpp"
#include "server/server.hpp"
#include "workloads/datasets.hpp"

namespace {

using namespace gclus;

std::uint64_t parse_u64_or_die(const std::string& key,
                               const std::string& value) {
  const StatusOr<std::uint64_t> v = parse_u64(value);
  if (!v.ok()) {
    std::fprintf(stderr, "--%s=%s is not an unsigned integer\n", key.c_str(),
                 value.c_str());
    std::exit(1);
  }
  return *v;
}

double parse_double_or_die(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || v < 0) {
    std::fprintf(stderr, "--%s=%s is not a nonnegative number\n", key.c_str(),
                 value.c_str());
    std::exit(1);
  }
  return v;
}

[[noreturn]] void die_status(const Status& st) {
  std::fprintf(stderr, "gclus_serve: %s\n", st.to_string().c_str());
  std::exit(2);
}

using gclus_cli::make_queries;

// The SIGTERM/SIGINT target: request_drain() is async-signal-safe (an
// atomic store plus one self-pipe write), so the handler may call it
// directly.  Published only after the NetServer is fully constructed.
std::atomic<net::NetServer*> g_drain_target{nullptr};

extern "C" void handle_drain_signal(int) {
  if (net::NetServer* s = g_drain_target.load()) s->request_drain();
}

/// Publishes the bound port for clients to discover — atomically, so a
/// poller never reads a partial write.
void write_port_file(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) die_status(status_from_errno(errno, tmp));
  std::fprintf(f, "%u\n", port);
  std::fclose(f);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    die_status(status_from_errno(errno, path));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string graph_path;
  std::string dataset;
  std::string artifact_path;
  bool build_artifacts = false;
  bool require_artifact = false;
  bool fail_on_shed = false;
  std::uint64_t num_queries = 10000;
  std::uint64_t batch = 512;
  double zipf = 0.8;
  bool listen = false;
  std::uint16_t listen_port = 0;
  std::string port_file;
  server::ServerOptions server_opts;
  DistanceOracleOptions oracle_opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--build-artifacts") {
      build_artifacts = true;
      continue;
    }
    if (arg == "--require-artifact") {
      require_artifact = true;
      continue;
    }
    if (arg == "--fail-on-shed") {
      fail_on_shed = true;
      continue;
    }
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "unknown argument %s (flags are --KEY=VALUE)\n",
                   arg.c_str());
      return 1;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "graph") {
      graph_path = value;
    } else if (key == "dataset") {
      dataset = value;
    } else if (key == "artifacts") {
      artifact_path = value;
    } else if (key == "queries") {
      num_queries = parse_u64_or_die(key, value);
    } else if (key == "batch") {
      batch = parse_u64_or_die(key, value);
      if (batch == 0) {
        std::fprintf(stderr, "--batch must be positive\n");
        return 1;
      }
    } else if (key == "workers") {
      server_opts.workers =
          static_cast<std::size_t>(parse_u64_or_die(key, value));
    } else if (key == "queue-depth") {
      server_opts.queue_depth =
          static_cast<std::size_t>(parse_u64_or_die(key, value));
    } else if (key == "seed") {
      oracle_opts.seed = parse_u64_or_die(key, value);
    } else if (key == "tau") {
      oracle_opts.tau = static_cast<std::uint32_t>(parse_u64_or_die(key, value));
    } else if (key == "zipf") {
      zipf = parse_double_or_die(key, value);
    } else if (key == "listen") {
      const std::uint64_t port = parse_u64_or_die(key, value);
      if (port > 65535) {
        std::fprintf(stderr, "--listen=%llu is not a TCP port\n",
                     static_cast<unsigned long long>(port));
        return 1;
      }
      listen = true;
      listen_port = static_cast<std::uint16_t>(port);
    } else if (key == "port-file") {
      port_file = value;
    } else {
      std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
      return 1;
    }
  }
  if (graph_path.empty() == dataset.empty()) {
    std::fprintf(stderr,
                 "exactly one of --graph=PATH or --dataset=NAME is required\n");
    return 1;
  }

  // ---- load the graph (mmap-ed CSR v2 when the input allows it) ----
  Graph g;
  if (!dataset.empty()) {
    g = workloads::load_dataset(dataset).graph;
    if (artifact_path.empty()) {
      artifact_path = "gclus_" + dataset + ".orc";
    }
  } else {
    StatusOr<Graph> loaded = io::is_csr_file(graph_path)
                                 ? io::load_csr(graph_path)
                                 : io::load_edge_list(graph_path);
    if (!loaded.ok()) die_status(loaded.status());
    g = std::move(loaded).value();
    if (artifact_path.empty()) artifact_path = graph_path + ".orc";
  }
  std::printf("graph: %u nodes, %llu edges%s\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()),
              g.owns_storage() ? "" : " (mmap-backed)");

  RecordingTelemetry telemetry;
  oracle_opts.telemetry = &telemetry;

  // ---- --build-artifacts: decompose, publish, exit ----
  if (build_artifacts) {
    Timer t;
    auto engine = server::QueryEngine::build(std::move(g), oracle_opts);
    if (!engine.ok()) die_status(engine.status());
    const double build_s = t.elapsed_s();
    if (const Status st = engine->save(artifact_path); !st.ok()) {
      die_status(st);
    }
    std::printf(
        "built oracle artifact in %.3fs: %u clusters, max radius %u\n",
        build_s, engine->num_clusters(), engine->max_radius());
    for (const auto& [key, value] : telemetry.events()) {
      std::printf("  telemetry %-28s %.6g\n", key.c_str(), value);
    }
    std::printf("published %s\n", artifact_path.c_str());
    return 0;
  }

  // ---- obtain the engine: sidecar fast path, else build + republish ----
  Timer t_load;
  server::QueryEngine::LoadReport report;
  auto engine = server::QueryEngine::load_or_build(std::move(g), artifact_path,
                                                   oracle_opts, &report);
  if (!engine.ok()) die_status(engine.status());
  const double engine_s = t_load.elapsed_s();
  std::printf(
      "engine: %u clusters, max radius %u, %s in %.3fs%s%s\n",
      engine->num_clusters(), engine->max_radius(),
      report.loaded_from_artifact ? "loaded from artifact" : "built",
      engine_s, report.evicted_corrupt ? " (evicted corrupt sidecar)" : "",
      report.rebuilt && report.republished ? " (republished)" : "");
  if (require_artifact && !report.loaded_from_artifact) {
    std::fprintf(stderr,
                 "gclus_serve: --require-artifact but the sidecar at %s did "
                 "not serve\n",
                 artifact_path.c_str());
    return 3;
  }

  // ---- network mode: serve remote clients until a drain signal ----
  if (listen) {
    server::QueryServer server(
        std::make_shared<const server::QueryEngine>(std::move(engine).value()),
        server_opts);
    net::NetServerOptions net_opts;
    net_opts.port = listen_port;
    net_opts.watch_artifact_path = artifact_path;
    auto nserver = net::NetServer::start(server, std::move(net_opts));
    if (!nserver.ok()) die_status(nserver.status());

    struct sigaction sa{};
    sa.sa_handler = handle_drain_signal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    g_drain_target.store(nserver->get());

    std::printf("listening on 127.0.0.1:%u (%zu workers, watching %s)\n",
                (*nserver)->port(), server.num_workers(),
                artifact_path.c_str());
    std::fflush(stdout);
    if (!port_file.empty()) write_port_file(port_file, (*nserver)->port());

    // Parks until SIGTERM/SIGINT, then answers everything in flight.
    (*nserver)->drain();
    g_drain_target.store(nullptr);

    const net::NetServerStats net_stats = (*nserver)->stats();
    const server::ServerStats stats = server.stats();
    std::printf(
        "drained: connections=%llu frames_in=%llu results_sent=%llu "
        "errors_sent=%llu bad_frames=%llu reloads=%llu\n",
        static_cast<unsigned long long>(net_stats.connections_accepted),
        static_cast<unsigned long long>(net_stats.frames_in),
        static_cast<unsigned long long>(net_stats.results_sent),
        static_cast<unsigned long long>(net_stats.errors_sent),
        static_cast<unsigned long long>(net_stats.bad_frames),
        static_cast<unsigned long long>(net_stats.reloads));
    std::printf("  queries served %llu (invalid %llu)\n",
                static_cast<unsigned long long>(stats.queries_served),
                static_cast<unsigned long long>(stats.invalid_queries));
    server.shutdown();  // safe only after drain() returned
    return 0;
  }

  // ---- serve ----
  const std::vector<server::Query> stream =
      make_queries(engine->num_nodes(), num_queries, zipf, oracle_opts.seed);
  server::QueryServer server(*engine, server_opts);
  std::printf("serving %llu queries (batch %llu, zipf %.2f) on %zu workers, "
              "queue depth %zu\n",
              static_cast<unsigned long long>(num_queries),
              static_cast<unsigned long long>(batch), zipf,
              server.num_workers(), server.queue_depth());

  Timer t_serve;
  std::vector<server::QueryServer::Ticket> tickets;
  tickets.reserve(stream.size() / batch + 1);
  for (std::size_t off = 0; off < stream.size(); off += batch) {
    const std::size_t end = std::min(stream.size(), off + batch);
    // The blocking path: a full queue parks this producer until a worker
    // frees a slot.  try_submit/shedding is for clients that would rather
    // drop load than wait — a load generator wants backpressure, and
    // --fail-on-shed then certifies the queue never overflowed.
    auto ticket =
        server.submit({stream.begin() + static_cast<long>(off),
                       stream.begin() + static_cast<long>(end)});
    if (!ticket.ok()) die_status(ticket.status());
    tickets.push_back(std::move(ticket).value());
  }
  std::vector<double> latencies;
  latencies.reserve(tickets.size());
  std::uint64_t ok_answers = 0;
  for (const auto& ticket : tickets) {
    for (const auto& r : ticket.wait()) {
      if (r.code == StatusCode::kOk) ++ok_answers;
    }
    latencies.push_back(ticket.latency_s());
  }
  const double serve_s = t_serve.elapsed_s();
  server.shutdown();

  const server::ServerStats stats = server.stats();
  std::sort(latencies.begin(), latencies.end());
  const auto pct = [&](double p) {
    if (latencies.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(latencies.size() - 1));
    return latencies[idx];
  };
  std::printf("served %llu queries in %.3fs: %.0f queries/s\n",
              static_cast<unsigned long long>(stats.queries_served), serve_s,
              static_cast<double>(stats.queries_served) / serve_s);
  std::printf("  batch latency p50 %.0fus  p99 %.0fus\n", pct(0.5) * 1e6,
              pct(0.99) * 1e6);
  std::printf("  ok %llu  invalid %llu  shed batches %llu (%llu queries)\n",
              static_cast<unsigned long long>(ok_answers),
              static_cast<unsigned long long>(stats.invalid_queries),
              static_cast<unsigned long long>(stats.shed_batches),
              static_cast<unsigned long long>(stats.shed_queries));
  for (const auto& [name, count] : fault::triggered_counters()) {
    std::printf("  fault     %-28s %llu\n", name.c_str(),
                static_cast<unsigned long long>(count));
  }
  if (fail_on_shed && stats.shed_batches > 0) {
    std::fprintf(stderr, "gclus_serve: --fail-on-shed but %llu batches shed\n",
                 static_cast<unsigned long long>(stats.shed_batches));
    return 3;
  }
  return 0;
}
