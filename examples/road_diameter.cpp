// Scenario: diameter of a continent-scale road network on a cluster.
//
// Road networks have enormous hop diameters (the paper's roads-CA/PA/TX
// run to ~1000), so every Θ(Δ)-round distributed algorithm — BFS, HADI —
// pays ~Δ scheduling barriers.  This example runs the full distributed
// pipeline on the MR emulator: CLUSTER-based diameter approximation vs
// the BFS baseline, reporting the round counts and communication volumes
// a real cluster deployment would experience.
//
//   $ ./road_diameter
//
#include <cstdio>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mr_algos/mr_bfs.hpp"
#include "mr_algos/mr_cluster.hpp"

int main() {
  using namespace gclus;

  const Graph g = gen::road_like(260, 260, 0.08, 0.02, /*seed=*/11);
  std::printf("road network: %u junctions, %llu segments\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));
  const Dist exact = exact_diameter(g).diameter;
  std::printf("exact hop diameter (offline reference): %u\n\n", exact);

  // --- Decomposition-based estimate (this paper).
  {
    mr::Engine engine;
    mr_algos::MrClusterOptions opts;
    opts.seed = 11;
    const auto r = mr_algos::mr_cluster_diameter(engine, g, /*tau=*/16, opts);
    std::printf("CLUSTER pipeline: estimate %llu (%.2fx exact)\n",
                static_cast<unsigned long long>(r.estimate),
                static_cast<double>(r.estimate) / exact);
    std::printf("  %zu MR rounds, %llu KV pairs shuffled, quotient %u/%llu\n",
                engine.metrics().rounds,
                static_cast<unsigned long long>(
                    engine.metrics().pairs_shuffled),
                r.quotient_nodes,
                static_cast<unsigned long long>(r.quotient_edges));
  }

  // --- BFS baseline: 2·ecc upper bound, Θ(Δ) rounds.
  {
    mr::Engine engine;
    const auto r = mr_algos::mr_bfs_diameter(engine, g, /*source=*/0);
    std::printf("BFS baseline:     estimate %llu (%.2fx exact)\n",
                static_cast<unsigned long long>(r.estimate),
                static_cast<double>(r.estimate) / exact);
    std::printf("  %zu MR rounds, %llu KV pairs shuffled\n",
                engine.metrics().rounds,
                static_cast<unsigned long long>(
                    engine.metrics().pairs_shuffled));
  }

  std::printf(
      "\nAt ~0.3 s of scheduling latency per distributed round, the round "
      "gap above is the paper's order-of-magnitude speedup.\n");
  return 0;
}
