// Shared query-stream generator for the serving CLIs (gclus_serve,
// gclus_client): a zipfian node sampler and the canonical serving mix.
// Both ends of the network soak test generate their streams from this
// single definition, so a (seed, zipf, count) triple names the same byte
// stream on the server and every client — which is what makes the
// replay-and-compare verification in gclus_client meaningful.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "server/server.hpp"

namespace gclus_cli {

/// Zipfian node sampler over ranks 0..n-1 (rank r drawn ∝ (r+1)^-s) via a
/// precomputed CDF — skewed access is what a shared query service sees in
/// practice, and what makes the label/APSP cache lines contended.
class ZipfSampler {
 public:
  ZipfSampler(gclus::NodeId n, double s) : cdf_(n) {
    double sum = 0.0;
    for (gclus::NodeId r = 0; r < n; ++r) {
      sum += s == 0.0 ? 1.0 : std::pow(static_cast<double>(r) + 1.0, -s);
      cdf_[r] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }

  gclus::NodeId operator()(gclus::Rng& rng) const {
    const double u = rng.next_double();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<gclus::NodeId>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// The serving workload: ~90% distance, 5% same-cluster, 5% neighborhood
/// queries, sources and targets drawn from the zipfian sampler.
inline std::vector<gclus::server::Query> make_queries(gclus::NodeId n,
                                                      std::uint64_t count,
                                                      double zipf,
                                                      std::uint64_t seed) {
  const ZipfSampler sample(n, zipf);
  gclus::Rng rng(seed);
  std::vector<gclus::server::Query> qs;
  qs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    gclus::server::Query q;
    q.u = sample(rng);
    const std::uint64_t roll = rng.next_below(100);
    if (roll < 90) {
      q.kind = gclus::server::QueryKind::kApproxDistance;
      q.arg = sample(rng);
    } else if (roll < 95) {
      q.kind = gclus::server::QueryKind::kSameCluster;
      q.arg = sample(rng);
    } else {
      q.kind = gclus::server::QueryKind::kClusterNeighborhood;
      q.arg = 1;
    }
    qs.push_back(q);
  }
  return qs;
}

}  // namespace gclus_cli
