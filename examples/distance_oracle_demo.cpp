// Scenario: approximate distance queries over a road network.
//
// A routing frontend needs hop-distance *estimates* in microseconds —
// without storing the O(n²) distance matrix or running a BFS per query.
// The §4 distance oracle stores per-node (cluster, distance-to-center)
// labels plus the APSP matrix of the weighted quotient graph: linear
// total space, O(1) queries, polylogarithmic distortion for far pairs.
//
//   $ ./distance_oracle_demo
//
#include <cstdio>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/distance_oracle.hpp"
#include "graph/bfs.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace gclus;

  const Graph g = gen::road_like(220, 220, 0.08, 0.02, /*seed=*/5);
  std::printf("road network: %u junctions, %llu segments (%zu KB as CSR)\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              g.memory_bytes() / 1024);

  Timer build_timer;
  DistanceOracleOptions opts;
  opts.seed = 5;
  opts.use_cluster2 = false;
  const DistanceOracle oracle = DistanceOracle::build(g, opts);
  std::printf("oracle built in %.2f s: %u clusters, %zu KB storage\n",
              build_timer.elapsed_s(), oracle.num_clusters(),
              oracle.memory_bytes() / 1024);

  // Evaluate distortion on random pairs against exact BFS distances.
  Rng rng(99);
  constexpr int kSources = 5;
  constexpr int kQueriesPerSource = 2000;
  double worst = 1.0, sum = 0.0;
  std::size_t count = 0;
  for (int s = 0; s < kSources; ++s) {
    const auto u = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto exact = bfs_distances(g, u);
    for (int q = 0; q < kQueriesPerSource; ++q) {
      const auto v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
      if (exact[v] == 0) continue;
      const double ratio =
          static_cast<double>(oracle.upper_bound(u, v)) / exact[v];
      worst = std::max(worst, ratio);
      sum += ratio;
      ++count;
    }
  }
  std::printf("distortion over %zu random queries: avg %.2fx, worst %.2fx\n",
              count, sum / count, worst);

  // Query throughput.
  Timer query_timer;
  constexpr int kBatch = 1000000;
  std::uint64_t sink = 0;
  for (int q = 0; q < kBatch; ++q) {
    const auto u = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    const auto v = static_cast<NodeId>(rng.next_below(g.num_nodes()));
    sink += oracle.upper_bound(u, v);
  }
  const double secs = query_timer.elapsed_s();
  std::printf("throughput: %.1fM queries/s (checksum %llu)\n",
              kBatch / secs / 1e6, static_cast<unsigned long long>(sink));
  return 0;
}
