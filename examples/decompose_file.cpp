// CLI tool: decompose an arbitrary edge-list graph from disk through the
// algorithm registry — the unified API's front door in miniature.
//
//   $ ./decompose_file [path/to/edges.txt] [flags]
//
//   --list                     print every registered algorithm + schema
//   --algo=NAME                algorithm to run (default: cluster)
//   --seed=N --threads=N       RunContext knobs
//   --growth.mode=push|pull|auto --growth.alpha=F --growth.beta=F
//   --format=auto|edges|csr2   input format (auto sniffs the CSR v2 magic)
//   --load=auto|mmap|copy      CSR v2 load mode (auto prefers mmap)
//   --layout=plain|compressed  in-memory representation for the run: plain
//                              CSR arrays, or the Rice-coded compressed
//                              adjacency (2-4x smaller; growth-engine
//                              algorithms run on it natively, others
//                              decompress transparently)
//   --convert=OUT.csr2         convert the input to CSR v2 and exit —
//                              preprocess a SNAP edge list once, then
//                              mmap it on every subsequent run
//   --compress                 with --convert: write the compressed CSR v2
//                              layout instead and report the achieved
//                              compression ratio
//   --KEY=VALUE                algorithm parameter, validated against the
//                              registry schema (e.g. --tau=64, --beta=0.4)
//
// There is deliberately no per-algorithm switch statement here: the
// registry supplies the schema and the adapter, so a new decomposition
// algorithm becomes selectable the moment it registers itself — which is
// how the MR-emulated variants are driven too:
//
//   $ ./decompose_file --algo=mr.cluster --tau=16 --spill_bytes=65536
//
// runs CLUSTER in MR rounds with the out-of-core shuffle capped at 64 KiB
// and prints round/spill/combiner telemetry alongside the clustering.
//
// The file format is the SNAP/LAW edge list the paper's datasets ship in:
// one "u v" pair per line, '#'/'%' comments, arbitrary sparse ids.  With
// no input path, a demo graph is generated and written to a temp file
// first, so the tool is runnable out of the box.  Output: clustering
// summary, the largest clusters, telemetry events, and the quotient graph
// written next to the input.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "api/run_context.hpp"
#include "api/workspace.hpp"
#include "common/faultpoint.hpp"
#include "common/parse.hpp"
#include "common/status.hpp"
#include "core/quotient.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "par/thread_pool.hpp"

namespace {

using namespace gclus;

void print_registry() {
  std::printf("registered algorithms:\n");
  for (const std::string& name : registry().names()) {
    const AlgoInfo* info = registry().find(name);
    std::printf("  %-18s %s\n", name.c_str(), info->summary.c_str());
    for (const ParamSpec& p : info->params) {
      std::printf("    --%-16s %-6s (default %s) %s\n", p.key.c_str(),
                  param_type_name(p.type), p.default_value.c_str(),
                  p.help.c_str());
    }
  }
}

// Context-level flags get the same strictness the registry applies to
// algorithm parameters: a typo must abort, not silently become 0.
std::uint64_t parse_u64_or_die(const std::string& key,
                               const std::string& value) {
  const StatusOr<std::uint64_t> v = parse_u64(value);
  if (!v.ok()) {
    std::fprintf(stderr, "--%s=%s is not an unsigned integer\n", key.c_str(),
                 value.c_str());
    std::exit(1);
  }
  return *v;
}

double parse_double_or_die(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    std::fprintf(stderr, "--%s=%s is not a number\n", key.c_str(),
                 value.c_str());
    std::exit(1);
  }
  return v;
}

bool parse_growth_mode(const std::string& value, GrowthOptions& growth) {
  if (value == "push") {
    growth.mode = TraversalMode::kPushOnly;
  } else if (value == "pull") {
    growth.mode = TraversalMode::kPullOnly;
  } else if (value == "auto") {
    growth.mode = TraversalMode::kAuto;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string algo = "cluster";
  std::string format = "auto";
  std::string layout = "plain";
  std::string convert_out;
  bool compress_out = false;
  AlgoParams params;
  RunContext ctx;
  io::CsrLoadOptions load_opts;
  std::size_t threads = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      print_registry();
      return 0;
    }
    if (arg == "--compress") {
      compress_out = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      path = arg;  // positional: the edge-list file
      continue;
    }
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "flag %s needs =VALUE (try --list)\n", arg.c_str());
      return 1;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    // Context-level keys are shared by every algorithm; anything else is an
    // algorithm parameter the registry validates.
    if (key == "algo") {
      algo = value;
    } else if (key == "format") {
      if (value != "auto" && value != "edges" && value != "csr2") {
        std::fprintf(stderr, "--format=%s (expected auto|edges|csr2)\n",
                     value.c_str());
        return 1;
      }
      format = value;
    } else if (key == "load") {
      if (value == "auto") {
        load_opts.mode = io::CsrLoadMode::kAuto;
      } else if (value == "mmap") {
        load_opts.mode = io::CsrLoadMode::kMmap;
      } else if (value == "copy") {
        load_opts.mode = io::CsrLoadMode::kCopy;
      } else {
        std::fprintf(stderr, "--load=%s (expected auto|mmap|copy)\n",
                     value.c_str());
        return 1;
      }
    } else if (key == "layout") {
      if (value != "plain" && value != "compressed") {
        std::fprintf(stderr, "--layout=%s (expected plain|compressed)\n",
                     value.c_str());
        return 1;
      }
      layout = value;
    } else if (key == "convert") {
      convert_out = value;
    } else if (key == "seed") {
      ctx.seed = parse_u64_or_die(key, value);
    } else if (key == "threads") {
      threads = static_cast<std::size_t>(parse_u64_or_die(key, value));
    } else if (key == "growth.mode") {
      if (!parse_growth_mode(value, ctx.growth)) {
        std::fprintf(stderr, "--growth.mode=%s (expected push|pull|auto)\n",
                     value.c_str());
        return 1;
      }
    } else if (key == "growth.alpha") {
      ctx.growth.alpha = parse_double_or_die(key, value);
    } else if (key == "growth.beta") {
      ctx.growth.beta = parse_double_or_die(key, value);
    } else {
      params.set(key, value);
    }
  }

  if (registry().find(algo) == nullptr) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algo.c_str());
    print_registry();
    return 1;
  }

  if (path.empty()) {
    // Demo input: a ring of communities, written as a plain edge list.
    path = (std::filesystem::temp_directory_path() / "gclus_demo_edges.txt")
               .string();
    io::write_edge_list_file(gen::ring_of_cliques(40, 25), path);
    std::printf("no input given; wrote demo graph to %s\n", path.c_str());
  }

  // Unreadable or corrupt inputs are an *environment* problem, not a
  // usage error: report the Status on one line and exit 2, distinct from
  // the exit-1 flag/parameter mistakes above.
  const bool input_is_csr =
      format == "csr2" || (format == "auto" && io::is_csr_file(path));
  const auto input_info = io::probe_csr_file(path);
  const bool input_compressed =
      input_is_csr && input_info && input_info->compressed;

  Graph g;
  std::optional<CompressedGraph> cg;
  if (layout == "compressed" && input_compressed && convert_out.empty()) {
    // Compressed file, compressed run: view the file's sections in place —
    // no decode, no plain arrays.
    auto lc = io::load_compressed_csr(path, load_opts);
    if (!lc.ok()) {
      std::fprintf(stderr, "decompose_file: %s\n",
                   lc.status().to_string().c_str());
      return 2;
    }
    cg = std::move(lc).value();
    std::printf(
        "loaded %s (compressed CSR v2, zero-copy): %u nodes, %llu edges, "
        "%.2f bytes/edge\n",
        path.c_str(), cg->num_nodes(),
        static_cast<unsigned long long>(cg->num_edges()),
        static_cast<double>(cg->memory_bytes()) /
            static_cast<double>(std::max<std::uint64_t>(1, cg->num_edges())));
    // The summary below (components, validation, quotient) needs the plain
    // arrays once; the *algorithm* still runs on the compressed graph.
    g = cg->decompress();
  } else {
    StatusOr<Graph> loaded = input_is_csr ? io::load_csr(path, load_opts)
                                          : io::load_edge_list(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "decompose_file: %s\n",
                   loaded.status().to_string().c_str());
      return 2;
    }
    g = std::move(loaded).value();
    std::printf("loaded %s (%s%s): %u nodes, %llu edges\n", path.c_str(),
                input_is_csr ? "CSR v2" : "edge list",
                g.owns_storage() ? "" : ", mmap-backed", g.num_nodes(),
                static_cast<unsigned long long>(g.num_edges()));
    if (layout == "compressed" && convert_out.empty()) {
      cg = compress(g);
      std::printf("compressed in memory: %llu -> %llu adjacency bytes\n",
                  static_cast<unsigned long long>(
                      (static_cast<std::uint64_t>(g.num_nodes()) + 1) * 8 +
                      g.num_half_edges() * 4),
                  static_cast<unsigned long long>(cg->memory_bytes()));
    }
  }

  if (!convert_out.empty()) {
    // What the plain (uncompressed) CSR v2 writer would produce for this
    // graph: 64-byte-aligned header + offsets + neighbors sections.
    const auto align64 = [](std::uint64_t x) { return (x + 63) / 64 * 64; };
    const std::uint64_t plain_bytes =
        align64(align64(72) +
                (static_cast<std::uint64_t>(g.num_nodes()) + 1) * 8) +
        g.num_half_edges() * 4;
    if (compress_out) {
      const CompressedGraph out_cg = compress(g);
      if (const Status st = io::write_csr(out_cg, convert_out); !st.ok()) {
        std::fprintf(stderr, "decompose_file: %s\n", st.to_string().c_str());
        return 2;
      }
      const auto info = io::probe_csr_file(convert_out);
      const std::uint64_t file_bytes = info ? info->file_bytes : 0;
      std::printf(
          "wrote compressed CSR v2 %s: %llu bytes (plain would be %llu — "
          "%.2fx compression)\n",
          convert_out.c_str(), static_cast<unsigned long long>(file_bytes),
          static_cast<unsigned long long>(plain_bytes),
          static_cast<double>(plain_bytes) /
              static_cast<double>(std::max<std::uint64_t>(1, file_bytes)));
      std::printf(
          "reload it with: decompose_file %s --format=csr2 "
          "--layout=compressed\n",
          convert_out.c_str());
      return 0;
    }
    if (const Status st = io::write_csr(g, convert_out); !st.ok()) {
      std::fprintf(stderr, "decompose_file: %s\n", st.to_string().c_str());
      return 2;
    }
    const auto info = io::probe_csr_file(convert_out);
    std::printf("wrote CSR v2 %s: %llu bytes, n=%llu, m=%llu half-edges\n",
                convert_out.c_str(),
                static_cast<unsigned long long>(info ? info->file_bytes : 0),
                static_cast<unsigned long long>(g.num_nodes()),
                static_cast<unsigned long long>(g.num_half_edges()));
    std::printf("reload it with: decompose_file %s --format=csr2\n",
                convert_out.c_str());
    return 0;
  }
  const Components comps = connected_components(g);
  if (comps.count > 1) {
    std::printf("note: %u connected components; clustering all of them\n",
                comps.count);
  }

  std::unique_ptr<ThreadPool> private_pool;
  if (threads > 0) {
    private_pool = std::make_unique<ThreadPool>(threads);
    ctx.pool = private_pool.get();
  }
  Workspace workspace;
  ctx.workspace = &workspace;
  RecordingTelemetry telemetry;
  ctx.telemetry = &telemetry;

  const Clustering c = cg.has_value() ? registry().run(algo, *cg, params, ctx)
                                      : registry().run(algo, g, params, ctx);
  std::printf("%s: %u clusters, max radius %u, %zu growth steps%s\n",
              algo.c_str(), c.num_clusters(), c.max_radius(), c.growth_steps,
              c.validate(g) ? "" : "  [VALIDATION FAILED]");
  for (const auto& [key, value] : telemetry.events()) {
    std::printf("  telemetry %-28s %.6g\n", key.c_str(), value);
  }
  // Surfaced when GCLUS_FAULT is armed, so a fault-injection run shows
  // exactly which points fired alongside the (still valid) output.
  for (const auto& [name, count] : fault::triggered_counters()) {
    std::printf("  fault     %-28s %llu\n", name.c_str(),
                static_cast<unsigned long long>(count));
  }

  // Top clusters by size.
  std::vector<ClusterId> order(c.num_clusters());
  std::iota(order.begin(), order.end(), ClusterId{0});
  std::partial_sort(order.begin(),
                    order.begin() + std::min<std::size_t>(5, order.size()),
                    order.end(), [&](ClusterId a, ClusterId b) {
                      return c.sizes[a] > c.sizes[b];
                    });
  std::printf("largest clusters:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, order.size()); ++i) {
    const ClusterId id = order[i];
    std::printf("  #%u: center %u, %u nodes, radius %u\n", id, c.centers[id],
                c.sizes[id], c.radius[id]);
  }

  const QuotientGraph q = build_quotient(g, c, /*with_weights=*/false);
  const std::string out = path + ".quotient";
  io::write_edge_list_file(q.graph, out);
  std::printf("quotient graph (%u nodes, %llu edges) written to %s\n",
              q.graph.num_nodes(),
              static_cast<unsigned long long>(q.graph.num_edges()),
              out.c_str());
  return 0;
}
