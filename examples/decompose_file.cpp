// CLI tool: decompose an arbitrary edge-list graph from disk.
//
//   $ ./decompose_file [path/to/edges.txt] [tau]
//
// The file format is the SNAP/LAW edge list the paper's datasets ship in:
// one "u v" pair per line, '#'/'%' comments, arbitrary sparse ids.  With
// no arguments, a demo graph is generated and written to a temp file
// first, so the tool is runnable out of the box.  Output: clustering
// summary, the largest clusters, and the quotient graph written next to
// the input.
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/quotient.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

int main(int argc, char** argv) {
  using namespace gclus;

  std::string path;
  std::uint32_t tau = 8;
  if (argc > 1) {
    path = argv[1];
  } else {
    // Demo input: a ring of communities, written as a plain edge list.
    path = (std::filesystem::temp_directory_path() / "gclus_demo_edges.txt")
               .string();
    io::write_edge_list_file(gen::ring_of_cliques(40, 25), path);
    std::printf("no input given; wrote demo graph to %s\n", path.c_str());
  }
  if (argc > 2) tau = static_cast<std::uint32_t>(std::atoi(argv[2]));

  Graph g = io::read_edge_list_file(path);
  std::printf("loaded %s: %u nodes, %llu edges\n", path.c_str(),
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()));
  const Components comps = connected_components(g);
  if (comps.count > 1) {
    std::printf("note: %u connected components; clustering all of them\n",
                comps.count);
  }

  ClusterOptions opts;
  opts.seed = 1;
  const Clustering c = cluster(g, tau, opts);
  std::printf("CLUSTER(%u): %u clusters, max radius %u, %zu growth steps\n",
              tau, c.num_clusters(), c.max_radius(), c.growth_steps);

  // Top clusters by size.
  std::vector<ClusterId> order(c.num_clusters());
  std::iota(order.begin(), order.end(), ClusterId{0});
  std::partial_sort(order.begin(),
                    order.begin() + std::min<std::size_t>(5, order.size()),
                    order.end(), [&](ClusterId a, ClusterId b) {
                      return c.sizes[a] > c.sizes[b];
                    });
  std::printf("largest clusters:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, order.size()); ++i) {
    const ClusterId id = order[i];
    std::printf("  #%u: center %u, %u nodes, radius %u\n", id, c.centers[id],
                c.sizes[id], c.radius[id]);
  }

  const QuotientGraph q = build_quotient(g, c, /*with_weights=*/false);
  const std::string out = path + ".quotient";
  io::write_edge_list_file(q.graph, out);
  std::printf("quotient graph (%u nodes, %llu edges) written to %s\n",
              q.graph.num_nodes(),
              static_cast<unsigned long long>(q.graph.num_edges()),
              out.c_str());
  return 0;
}
