// Scenario: hub placement in a social network.
//
// A platform wants k "regional hub" accounts so that every user is within
// a few hops of a hub (content seeding, moderation reach, epidemic
// monitoring — the k-center problem on the social graph).  This example
// places hubs with the parallel CLUSTER-based approximation (§3.1) and
// sanity-checks the quality against the sequential Gonzalez baseline,
// which needs k full BFS sweeps and does not parallelize.
//
//   $ ./social_hubs [k]
//
#include <cstdio>
#include <cstdlib>

#include "baselines/gonzalez.hpp"
#include "common/parse.hpp"
#include "core/kcenter.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace gclus;

  NodeId k = 24;
  if (argc > 1) {
    const StatusOr<std::uint64_t> parsed = parse_u64(argv[1]);
    if (!parsed.ok() || *parsed == 0 || *parsed > 0xffffffffULL) {
      std::fprintf(stderr, "usage: social_hubs [K]  (K a positive u32)\n");
      return 1;
    }
    k = static_cast<NodeId>(*parsed);
  }

  // Power-law "follower" network, symmetrized: 60k users.
  const Graph g = largest_component(
                      gen::preferential_attachment(60000, 4, /*seed=*/7))
                      .graph;
  std::printf("social graph: %u users, %llu friendship edges\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()));

  KCenterOptions opts;
  opts.seed = 7;
  const KCenterResult hubs = kcenter_approx(g, k, opts);
  std::printf("CLUSTER-based placement: %zu hubs, worst user %u hops away\n",
              hubs.centers.size(), hubs.radius);
  std::printf("  (decomposition used tau=%u and produced %u raw clusters)\n",
              hubs.tau, hubs.raw_clusters);

  // Hub load balance: how many users each hub serves.
  std::vector<NodeId> load(k, 0);
  for (const auto owner : hubs.nearest_center) ++load[owner];
  NodeId min_load = g.num_nodes(), max_load = 0;
  for (const NodeId l : load) {
    min_load = std::min(min_load, l);
    max_load = std::max(max_load, l);
  }
  std::printf("  hub load: min %u, max %u users (avg %.0f)\n", min_load,
              max_load, static_cast<double>(g.num_nodes()) / k);

  const auto gz = baselines::gonzalez_kcenter(g, k);
  std::printf(
      "Gonzalez reference (k sequential BFS sweeps): radius %u -> "
      "our radius is %.2fx\n",
      gz.radius,
      static_cast<double>(hubs.radius) / std::max<Dist>(1, gz.radius));
  return 0;
}
