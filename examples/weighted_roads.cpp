// Scenario: decomposition of a road network with travel times (§7
// extension).
//
// Hop counts treat a highway segment and an alley the same; real road
// analytics weight edges by travel time.  This example runs the weighted
// decomposition on a road-like graph whose edge weights model segment
// speeds, and contrasts the two radii every cluster carries: the
// *weighted* radius (how far, in minutes, members are from their center)
// and the *hop* radius (how many message rounds a distributed
// implementation pays).  It finishes with the weighted diameter estimate
// against the exact value.
//
//   $ ./weighted_roads
//
#include <cstdio>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "core/weighted_cluster.hpp"
#include "graph/generators.hpp"
#include "graph/weighted.hpp"

int main() {
  using namespace gclus;

  // Base topology: sparse near-planar grid; weights 1..5 model per-
  // segment travel minutes (deterministic per edge).
  const Graph base = gen::road_like(120, 120, 0.08, 0.02, /*seed=*/3);
  std::vector<std::tuple<NodeId, NodeId, Weight>> edges;
  for (NodeId u = 0; u < base.num_nodes(); ++u) {
    for (const NodeId v : base.neighbors(u)) {
      if (u < v) {
        edges.emplace_back(u, v, 1 + hash_combine(3, u, v) % 5);
      }
    }
  }
  const WeightedGraph g =
      WeightedGraph::from_edges(base.num_nodes(), std::move(edges));
  std::printf("weighted road network: %u junctions, %llu segments\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()));

  WeightedClusterOptions opts;
  opts.seed = 3;
  const WeightedClustering c = weighted_cluster(g, /*tau=*/8, opts);
  std::printf(
      "weighted CLUSTER(8): %u districts\n"
      "  weighted radius (worst minutes to district center): %llu\n"
      "  hop radius (worst message rounds): %u\n",
      c.num_clusters(),
      static_cast<unsigned long long>(c.max_weighted_radius()),
      c.max_hop_radius());

  const WeightedDiameterApprox a = approximate_weighted_diameter(g, 8, opts);
  const Weight exact = weighted_diameter_exact(g);
  std::printf(
      "weighted diameter: exact %llu, estimate %llu (%.2fx), via a "
      "%u-node quotient\n",
      static_cast<unsigned long long>(exact),
      static_cast<unsigned long long>(a.upper_bound),
      static_cast<double>(a.upper_bound) / exact, a.quotient_nodes);
  return 0;
}
